// Fastswings reproduces the paper's motivating scenario: on workloads
// whose activity swings faster than a fixed DVFS interval, the
// event-driven adaptive controller reacts inside the swing while the
// fixed-interval schemes (PID and attack/decay) only see the averaged
// statistics at interval boundaries.
package main

import (
	"fmt"
	"log"

	"mcddvfs"
)

func main() {
	const insts = 300000
	benches := []string{"adpcm_encode", "adpcm_decode", "g721_encode", "gsm_decode", "art"}
	schemes := []mcddvfs.Scheme{mcddvfs.SchemeAdaptive, mcddvfs.SchemePID, mcddvfs.SchemeAttackDecay}

	fmt.Println("EDP improvement over the no-DVFS baseline (fast-varying codecs):")
	fmt.Printf("%-14s", "benchmark")
	for _, s := range schemes {
		fmt.Printf(" %13s", s)
	}
	fmt.Println()

	sums := make([]float64, len(schemes))
	for _, b := range benches {
		base, err := mcddvfs.Run(mcddvfs.RunSpec{Benchmark: b, Scheme: mcddvfs.SchemeNone, Instructions: insts})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s", b)
		for i, s := range schemes {
			run, err := mcddvfs.Run(mcddvfs.RunSpec{Benchmark: b, Scheme: s, Instructions: insts})
			if err != nil {
				log.Fatal(err)
			}
			edp := mcddvfs.CompareRuns(base, run).EDPImprovement
			sums[i] += edp
			fmt.Printf(" %12.2f%%", 100*edp)
		}
		fmt.Println()
	}
	fmt.Printf("%-14s", "MEAN")
	for i := range schemes {
		fmt.Printf(" %12.2f%%", 100*sums[i]/float64(len(benches)))
	}
	fmt.Println()
	fmt.Println("\nThe paper reports the adaptive scheme clearly ahead of both")
	fmt.Println("fixed-interval schemes on this group (Section 5).")
}
