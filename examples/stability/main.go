// Stability walks through the paper's Section-4 analysis: how the two
// basic time delays (T_m0 for the level signal, T_l0 for the slope
// signal) shape the closed loop's damping, overshoot and settling time,
// and why the paper recommends T_m0 ≈ 2–8 × T_l0 (Remark 3).
package main

import (
	"fmt"
	"log"

	"mcddvfs"
)

func main() {
	fmt.Println("Damping and transient response vs the delay ratio T_m0/T_l0")
	fmt.Println("(analytic, linearized loop at the f = f_max operating point):")
	fmt.Printf("%8s %8s %10s %12s %12s %8s\n", "Tm0", "Tl0", "damping ξ", "overshoot", "settle", "in band")

	for _, ratio := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
		s := mcddvfs.DefaultStabilitySystem()
		s.TL0 = 10
		s.TM0 = 10 * ratio
		// Scale γ so K_l sits at the paper's "typical" 0.5 regardless
		// of the ratio, isolating the ratio's effect.
		s.Gamma = 0.5 * s.TL0 / (s.L * s.K(1) * s.Step)
		band := ""
		if s.Remark3OK(1) {
			band = "  <- Remark 3"
		}
		fmt.Printf("%8.0f %8.0f %10.2f %11.1f%% %9.0f per %s\n",
			s.TM0, s.TL0, s.DampingRatio(1), 100*s.Overshoot(1), s.SettlingTime(1), band)
	}

	fmt.Println("\nRK4 integration of the nonlinear loop: workload step of +0.25")
	fmt.Println("service-rate units at t=0 from equilibrium at f = 0.5:")
	s := mcddvfs.DefaultStabilitySystem()
	tr, err := s.StepResponse(0.5, 0.25, 0.5, 30000)
	if err != nil {
		log.Fatal(err)
	}
	met := s.Analyze(tr)
	fmt.Printf("  peak queue excursion: %+.2f entries above q_ref\n", met.PeakQ)
	fmt.Printf("  settling time:        %.0f sampling periods\n", met.SettleTime)
	fmt.Printf("  final frequency:      %.3f (normalized)\n", met.FinalF)

	step := len(tr) / 16
	fmt.Println("\n  t(periods)   queue     f")
	for i := 0; i < len(tr); i += step {
		fmt.Printf("  %9.0f %8.2f %6.3f\n", tr[i].T, tr[i].Q, tr[i].F)
	}
}
