// Package mcddvfs is a library reproduction of "Voltage and Frequency
// Control With Adaptive Reaction Time in Multiple-Clock-Domain
// Processors" (Wu, Juang, Martonosi, Clark — HPCA 2005).
//
// It bundles a cycle-level multiple-clock-domain (MCD) out-of-order
// processor simulator with per-domain DVFS, the paper's adaptive
// event-driven DVFS controller, the fixed-interval prior-work schemes
// it is compared against (attack/decay and PID), a Wattch-style energy
// model, the Section-4 control-theoretic stability analysis, the
// Section-5.2 spectral workload classifier, and an experiment harness
// that regenerates every table and figure of the evaluation.
//
// Quick start:
//
//	res, err := mcddvfs.Run(mcddvfs.RunSpec{
//		Benchmark: "epic_decode",
//		Scheme:    mcddvfs.SchemeAdaptive,
//	})
//
// Compare against the no-DVFS baseline:
//
//	base, _ := mcddvfs.Run(mcddvfs.RunSpec{Benchmark: "epic_decode", Scheme: mcddvfs.SchemeNone})
//	cmp := mcddvfs.CompareRuns(base, res)
//	fmt.Printf("energy saving %.1f%%, slowdown %.1f%%\n",
//		100*cmp.EnergySaving, 100*cmp.PerfDegradation)
package mcddvfs

import (
	"context"
	"fmt"
	"io"
	"time"

	"mcddvfs/internal/control"
	"mcddvfs/internal/experiment"
	"mcddvfs/internal/faults"
	"mcddvfs/internal/governor"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/power"
	"mcddvfs/internal/scheme"
	"mcddvfs/internal/spectrum"
	"mcddvfs/internal/stability"
	"mcddvfs/internal/trace"
)

// Re-exported core types. The aliases make the full capability of the
// internal packages reachable through the public API without widening
// the import surface.
type (
	// Result is the outcome of one simulation run.
	Result = mcd.Result
	// DomainStats summarizes one clock domain after a run.
	DomainStats = mcd.DomainStats
	// FreqPoint is one frequency-trajectory sample (Figure 7's axes).
	FreqPoint = mcd.FreqPoint
	// MachineConfig is the Table-1 machine description.
	MachineConfig = mcd.Config
	// ControllerConfig parameterizes the adaptive controller.
	ControllerConfig = control.Config
	// ControllerStats counts adaptive-controller events.
	ControllerStats = control.Stats
	// Metrics is a run's headline energy/performance outcome.
	Metrics = power.Metrics
	// Comparison holds the paper's three metrics vs a baseline run.
	Comparison = power.Comparison
	// Scheme names a DVFS control scheme.
	Scheme = experiment.Scheme
	// Report is a rendered table or figure.
	Report = experiment.Report
	// Options configures experiment-harness runs.
	Options = experiment.Options
	// Matrix is the benchmark × scheme result grid.
	Matrix = experiment.Matrix
	// BenchClass is one row of the workload classification.
	BenchClass = experiment.BenchClass
	// StabilitySystem is the Section-4 analytic model.
	StabilitySystem = stability.System
	// Profile is a synthetic benchmark description.
	Profile = trace.Profile
	// Phase is one program phase of a Profile.
	Phase = trace.Phase
	// Mix is a phase's instruction-class distribution, indexed by the
	// Class* constants.
	Mix = trace.Mix
	// Class is a micro-operation class.
	Class = isa.Class
	// ExecDomain identifies a DVFS-controlled clock domain.
	ExecDomain = isa.ExecDomain
	// FaultConfig configures the deterministic fault-injection layer on
	// the DVFS control loop; the zero value disables injection and
	// leaves outputs bit-identical.
	FaultConfig = faults.Config
	// SensorFaults corrupts the occupancy readings controllers observe.
	SensorFaults = faults.SensorConfig
	// ActuatorFaults corrupts the path from controller decisions to the
	// clock domains.
	ActuatorFaults = faults.ActuatorConfig
	// CellError is one failed cell of a benchmark × scheme matrix.
	CellError = experiment.CellError
	// RowEvent is one completed benchmark row of a matrix sweep,
	// delivered through Options.RowFlush in benchmark order.
	RowEvent = experiment.RowEvent
	// CorpusStats summarizes streamed-trace residency and self-healing
	// for a corpus-backed matrix run (Matrix.Corpus).
	CorpusStats = experiment.CorpusStats
)

// The harness error taxonomy: every failure a run can produce wraps
// exactly one of these sentinels (match with errors.Is).
var (
	// ErrInvalidSpec marks requests that could never run (unknown
	// benchmark, malformed profile or machine configuration).
	ErrInvalidSpec = experiment.ErrInvalidSpec
	// ErrRunTimeout marks runs that exceeded their deadline.
	ErrRunTimeout = experiment.ErrRunTimeout
	// ErrCancelled marks runs aborted by context cancellation.
	ErrCancelled = experiment.ErrCancelled
	// ErrRunPanicked marks runs whose simulation panicked; the panic is
	// recovered into this error instead of crashing the process.
	ErrRunPanicked = experiment.ErrRunPanicked
)

// FaultIntensity returns the canonical fault profile scaled by level
// in [0, 1] — the knob the robustness sweep turns. See
// faults.Intensity for the profile.
func FaultIntensity(level float64, seed int64) FaultConfig {
	return faults.Intensity(level, seed)
}

// Instruction classes for building custom workload mixes.
const (
	ClassIntALU  = isa.IntALU
	ClassIntMult = isa.IntMult
	ClassIntDiv  = isa.IntDiv
	ClassFPAdd   = isa.FPAdd
	ClassFPMult  = isa.FPMult
	ClassFPDiv   = isa.FPDiv
	ClassFPSqrt  = isa.FPSqrt
	ClassLoad    = isa.Load
	ClassStore   = isa.Store
	ClassBranch  = isa.Branch
	ClassNop     = isa.Nop
)

// Named constants for the paper's evaluated schemes. Any name listed
// by Schemes() is equally valid wherever a Scheme is accepted — the
// constants are a convenience, not the full set.
const (
	SchemeNone        = experiment.SchemeNone
	SchemeAdaptive    = experiment.SchemeAdaptive
	SchemePID         = experiment.SchemePID
	SchemeAttackDecay = experiment.SchemeAttackDecay
)

// SchemeInfo describes one registered DVFS control scheme.
type SchemeInfo struct {
	// Name is the stable identifier accepted wherever a Scheme is
	// (RunSpec.Scheme, Options.Schemes, the CLIs' -scheme/-schemes).
	Name Scheme
	// Controlled reports whether the scheme scales domain frequencies;
	// the no-DVFS baseline is the one registered scheme that does not.
	Controlled bool
	// Extension marks schemes beyond the paper's core comparison; they
	// run only when requested and never join default sweeps.
	Extension bool
	// Description is a one-line human-readable summary.
	Description string
}

// Schemes lists every registered DVFS control scheme in display
// order: the paper's comparison first (none, adaptive, pid,
// attack-decay), then extensions. The scheme registry
// (internal/scheme) is the single source of truth; plugging a new
// scheme in there makes it appear here and everywhere else with no
// further wiring.
func Schemes() []SchemeInfo {
	ds := scheme.All()
	out := make([]SchemeInfo, len(ds))
	for i, d := range ds {
		out[i] = SchemeInfo{
			Name:        Scheme(d.Name),
			Controlled:  d.Controlled,
			Extension:   d.Extension,
			Description: d.Description,
		}
	}
	return out
}

// The controlled execution domains.
const (
	DomainInt = isa.DomainInt
	DomainFP  = isa.DomainFP
	DomainLS  = isa.DomainLS
)

// Benchmarks returns the names of the 17 bundled synthetic benchmarks
// (6 MediaBench, 6 SPECint2000, 5 SPECfp2000 profiles).
func Benchmarks() []string { return trace.Names() }

// BenchmarkProfile returns the profile of one bundled benchmark.
func BenchmarkProfile(name string) (Profile, error) { return trace.ByName(name) }

// DefaultMachine returns the Table-1 machine configuration.
func DefaultMachine() MachineConfig { return mcd.DefaultConfig() }

// DefaultController returns the paper's adaptive-controller
// configuration for one domain (QRef 7 for INT, 4 for FP/LS; delays
// 50/8; deviation windows ±1/0).
func DefaultController(domain ExecDomain) ControllerConfig {
	return control.DefaultConfig(domain)
}

// RunSpec describes one simulation run.
type RunSpec struct {
	// Benchmark is a bundled benchmark name (see Benchmarks).
	Benchmark string
	// Scheme selects the DVFS control scheme (default SchemeAdaptive).
	Scheme Scheme
	// Instructions is the dynamic instruction budget (default 500000).
	Instructions int64
	// Seed makes the run reproducible (default 1).
	Seed int64
	// Machine, when non-nil, overrides the Table-1 machine.
	Machine *MachineConfig
	// TuneAdaptive, when non-nil, adjusts the adaptive controller of
	// each domain before the run (ignored for other schemes). It must
	// be a pure function of its argument: besides configuring the
	// controllers, it is replayed against scratch per-domain defaults
	// to canonicalize its effect for the in-process result cache.
	TuneAdaptive func(*ControllerConfig)
	// Faults injects deterministic sensor/actuator faults into the
	// DVFS control loop; the zero value changes nothing.
	Faults FaultConfig
	// Timeout bounds the run; on expiry the run fails with
	// ErrRunTimeout (0 = unbounded).
	Timeout time.Duration
}

// options converts the spec to harness options.
func (spec RunSpec) options() experiment.Options {
	return experiment.Options{
		Instructions:   spec.Instructions,
		Seed:           spec.Seed,
		Machine:        spec.Machine,
		MutateAdaptive: spec.TuneAdaptive,
		Faults:         spec.Faults,
		Timeout:        spec.Timeout,
	}
}

// Run simulates one benchmark under one control scheme and returns the
// result. Invalid specs (unknown benchmark or scheme, malformed
// machine configuration) fail with an error wrapping ErrInvalidSpec
// rather than panicking.
func Run(spec RunSpec) (*Result, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with cancellation: the simulation aborts with an
// error wrapping ErrCancelled (or ErrRunTimeout for spec.Timeout)
// shortly after ctx ends.
func RunContext(ctx context.Context, spec RunSpec) (*Result, error) {
	if spec.Scheme == "" {
		spec.Scheme = SchemeAdaptive
	}
	return experiment.RunOneContext(ctx, spec.Benchmark, spec.Scheme, spec.options())
}

// RunProfile simulates a user-defined workload profile (rather than a
// bundled benchmark) under the given spec. spec.Benchmark is ignored.
// Like Run, it reports invalid input as ErrInvalidSpec instead of
// panicking.
func RunProfile(prof Profile, spec RunSpec) (*Result, error) {
	return RunProfileContext(context.Background(), prof, spec)
}

// RunProfileContext is RunProfile with cancellation.
func RunProfileContext(ctx context.Context, prof Profile, spec RunSpec) (*Result, error) {
	if spec.Scheme == "" {
		spec.Scheme = SchemeAdaptive
	}
	return experiment.RunProfileContext(ctx, prof, spec.Scheme, spec.options())
}

// CompareRuns computes the paper's three headline metrics (energy
// saving, performance degradation, EDP improvement) of run against
// base.
func CompareRuns(base, run *Result) Comparison {
	return power.Compare(base.Metrics, run.Metrics)
}

// ClassifyWorkload applies the Section-5.2 spectral test to a queue
// occupancy series sampled at 250 MHz and reports whether it counts as
// fast-varying.
func ClassifyWorkload(occupancy []float64) (fastShare float64, fast bool, err error) {
	c, err := spectrum.Classify(occupancy, spectrum.DefaultIntervalSamples, spectrum.DefaultFastShareThreshold)
	if err != nil {
		return 0, false, err
	}
	return c.ShortShare, c.Fast, nil
}

// DefaultStabilitySystem returns the Section-4 analytic model with the
// paper's typical setting.
func DefaultStabilitySystem() StabilitySystem { return stability.Default() }

// NewMatrix simulates every benchmark under every scheme (the grid
// behind Figures 9–11). Expensive: ~70 full simulations. A failing
// cell no longer aborts the sweep: it lands in Matrix.Failures as a
// structured error while the rest of the matrix completes.
func NewMatrix(opt Options) (*Matrix, error) { return experiment.RunMatrix(opt) }

// NewMatrixContext is NewMatrix with cancellation; on cancellation the
// partial matrix is returned alongside an ErrCancelled error.
func NewMatrixContext(ctx context.Context, opt Options) (*Matrix, error) {
	return experiment.RunMatrixContext(ctx, opt)
}

type (
	// ChipConfig configures an N-core MCD chip (Options.Cores and
	// friends build one for you; construct directly for full control).
	ChipConfig = mcd.ChipConfig
	// ChipResult is a chip run's outcome: per-core Results plus the
	// chip rollup and the governor's epoch trace.
	ChipResult = mcd.ChipResult
	// EpochSample is one entry of ChipResult.EpochTrace.
	EpochSample = mcd.EpochSample
)

// GovernorInfo describes one registered chip-level power-cap governor.
type GovernorInfo struct {
	// Name is the stable identifier (Options.Governor, the CLIs'
	// -governor, the service's "governor" field).
	Name string
	// Capping reports whether the governor enforces a power budget;
	// "none" is the one registered governor that does not.
	Capping bool
	// Description is a one-line human-readable summary.
	Description string
}

// Governors lists every registered chip-level governor in display
// order. The governor registry (internal/governor) is the single
// source of truth, exactly like the scheme registry: plugging a new
// governor in there makes it appear here, in the CLIs' -governor
// usage, and in the service's validation with no further wiring.
func Governors() []GovernorInfo {
	ds := governor.All()
	out := make([]GovernorInfo, len(ds))
	for i, d := range ds {
		out[i] = GovernorInfo{Name: d.Name, Capping: d.Capping, Description: d.Description}
	}
	return out
}

// RunChip simulates an N-core chip: each core is a full MCD processor
// running one benchmark (assigned round-robin from benchmarks; nil
// picks a default heterogeneous mix), with opt.PowerCapW and
// opt.Governor selecting the chip-level power-cap policy. With
// opt.Cores <= 1, no budget, and no governor this is exactly the
// single-core simulation.
func RunChip(benchmarks []string, sch Scheme, opt Options) (*ChipResult, error) {
	return experiment.RunChip(benchmarks, sch, opt)
}

// RunChipContext is RunChip with cancellation.
func RunChipContext(ctx context.Context, benchmarks []string, sch Scheme, opt Options) (*ChipResult, error) {
	return experiment.RunChipContext(ctx, benchmarks, sch, opt)
}

// ArtifactInfo describes one renderable artifact of the paper's
// evaluation (a table, figure, or extension report).
type ArtifactInfo = experiment.ArtifactInfo

// ArtifactFormat selects an artifact encoding: FormatText, FormatJSON
// or FormatSVG.
type ArtifactFormat = experiment.ArtifactFormat

// Artifact encodings. SVG is available only for artifacts whose
// ArtifactInfo.SVG flag is set.
const (
	FormatText = experiment.FormatText
	FormatJSON = experiment.FormatJSON
	FormatSVG  = experiment.FormatSVG
)

// Artifacts lists every renderable artifact in catalog order — the
// same catalog cmd/mcdserve serves over HTTP.
func Artifacts() []ArtifactInfo { return experiment.Artifacts() }

// RenderArtifact renders one artifact by catalog ID into the given
// format, returning the encoded bytes and their MIME content type.
// The bytes are deterministic: byte-identical across runs, processes,
// and cache states for the same id, format, and options.
func RenderArtifact(id string, format ArtifactFormat, opt Options) ([]byte, string, error) {
	return experiment.RenderArtifactContext(context.Background(), id, format, opt)
}

// RenderArtifactContext is RenderArtifact with cancellation; the
// returned error wraps the usual taxonomy sentinels.
func RenderArtifactContext(ctx context.Context, id string, format ArtifactFormat, opt Options) ([]byte, string, error) {
	return experiment.RenderArtifactContext(ctx, id, format, opt)
}

// FaultSweep measures how gracefully each control scheme degrades as
// control-loop faults intensify (see experiment.FaultSweep). Passing
// nil benchmarks or intensities selects the defaults.
func FaultSweep(opt Options, benchmarks []string, intensities []float64) (Report, error) {
	return experiment.FaultSweep(opt, benchmarks, intensities)
}

// TraceSource is a stream of dynamic instructions: a synthetic
// Generator or a replayed trace file.
type TraceSource = trace.Source

// NewTraceGenerator builds a generator for a profile — the way to
// stream instructions without running the simulator.
func NewTraceGenerator(prof Profile, seed, instructions int64) (*trace.Generator, error) {
	return trace.NewGenerator(prof, seed, instructions)
}

// WriteTrace serializes count instructions from src to w in the
// repository's trace format (replayable with ReadTrace / cmd/tracegen).
func WriteTrace(w io.Writer, src TraceSource, count int64) (int64, error) {
	return trace.Write(w, src, count)
}

// ReadTrace opens a serialized trace for replay.
func ReadTrace(r io.Reader) (*trace.Reader, error) { return trace.NewReader(r) }

// RunTrace simulates a pre-built instruction source (e.g. a replayed
// trace) under the given spec. spec.Benchmark and spec.Instructions are
// ignored: the source defines both.
func RunTrace(src TraceSource, spec RunSpec) (*Result, error) {
	if spec.Scheme == "" {
		spec.Scheme = SchemeAdaptive
	}
	machine := DefaultMachine()
	if spec.Machine != nil {
		machine = *spec.Machine
	}
	machine.Seed = spec.Seed
	if spec.Faults.Enabled() {
		machine.Faults = spec.Faults
	}
	p, err := mcd.New(machine)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	opt := experiment.Options{Seed: spec.Seed, MutateAdaptive: spec.TuneAdaptive}
	if err := experiment.AttachScheme(p, spec.Scheme, opt); err != nil {
		return nil, err
	}
	res, err := p.Run(src)
	if err != nil {
		return nil, err
	}
	res.Scheme = string(spec.Scheme)
	return res, nil
}
