package mcddvfs

// One benchmark per table/figure of the paper's evaluation (see the
// DESIGN.md experiment index), plus micro-benchmarks for the hot
// components. The macro benchmarks run reduced instruction budgets so
// `go test -bench=. -benchmem` completes in minutes; cmd/experiments
// regenerates the full-scale artifacts. Custom metrics report the
// headline quantity each artifact is about, so the bench output doubles
// as a miniature results table.

import (
	"bytes"
	"fmt"
	"testing"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/control"
	"mcddvfs/internal/experiment"
	"mcddvfs/internal/spectrum"
	"mcddvfs/internal/trace"
)

// benchOpt returns the reduced-budget harness options for macro benches.
func benchOpt(insts int64, benches ...string) experiment.Options {
	return experiment.Options{Instructions: insts, Seed: 1, Benchmarks: benches}
}

// uncached disables the harness result cache for the duration of a
// benchmark. Without this, every iteration after the first would be a
// cache hit and ns/op would measure a map lookup, not a simulation.
func uncached(b *testing.B) {
	b.Helper()
	experiment.SetCaching(false)
	b.Cleanup(func() { experiment.SetCaching(true) })
}

// BenchmarkTable1Config regenerates the simulation-parameter table.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiment.Table1(experiment.DefaultOptions())
		if len(rep.Lines) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Classification regenerates the benchmark
// classification table (full suite, reduced budget).
func BenchmarkTable2Classification(b *testing.B) {
	uncached(b)
	opt := benchOpt(100000)
	for i := 0; i < b.N; i++ {
		rep, classes, err := experiment.Table2(opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = rep
		b.ReportMetric(float64(len(experiment.FastGroup(classes))), "fast-benchmarks")
	}
}

// BenchmarkFigure7FrequencyTrace regenerates the epic_decode FP-domain
// frequency trajectory under the adaptive controller.
func BenchmarkFigure7FrequencyTrace(b *testing.B) {
	uncached(b)
	opt := benchOpt(200000)
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Figure7(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Lines) < 5 {
			b.Fatal("trace too short")
		}
	}
}

// BenchmarkFigure8Spectrum regenerates the INT-queue variance spectrum
// of epic_decode.
func BenchmarkFigure8Spectrum(b *testing.B) {
	uncached(b)
	opt := benchOpt(150000)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure8(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// figureMatrix runs the shared benchmark × scheme grid for the three
// comparison figures.
func figureMatrix(b *testing.B) *experiment.Matrix {
	b.Helper()
	m, err := experiment.RunMatrix(benchOpt(60000))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFigure9EnergySavings regenerates the per-benchmark energy
// savings comparison and reports the adaptive scheme's suite average.
func BenchmarkFigure9EnergySavings(b *testing.B) {
	uncached(b)
	for i := 0; i < b.N; i++ {
		m := figureMatrix(b)
		rep := m.Figure9()
		if len(rep.Lines) < 18 {
			b.Fatalf("figure 9 has %d lines", len(rep.Lines))
		}
		b.ReportMetric(100*m.MeanComparison(experiment.SchemeAdaptive, nil).EnergySaving, "%energy-save")
	}
}

// BenchmarkFigure10PerfDegradation regenerates the performance
// degradation comparison.
func BenchmarkFigure10PerfDegradation(b *testing.B) {
	uncached(b)
	for i := 0; i < b.N; i++ {
		m := figureMatrix(b)
		_ = m.Figure10()
		b.ReportMetric(100*m.MeanComparison(experiment.SchemeAdaptive, nil).PerfDegradation, "%perf-degr")
	}
}

// BenchmarkFigure11FastGroupEDP regenerates the fast-group EDP
// comparison (adaptive vs the fixed-interval schemes).
func BenchmarkFigure11FastGroupEDP(b *testing.B) {
	uncached(b)
	fast := []string{"adpcm_encode", "adpcm_decode", "g721_encode", "gsm_decode", "art"}
	for i := 0; i < b.N; i++ {
		m, err := experiment.RunMatrix(benchOpt(60000, fast...))
		if err != nil {
			b.Fatal(err)
		}
		_ = m.Figure11(fast)
		ad := m.MeanComparison(experiment.SchemeAdaptive, nil).EDPImprovement
		pid := m.MeanComparison(experiment.SchemePID, nil).EDPImprovement
		b.ReportMetric(100*ad, "%edp-adaptive")
		b.ReportMetric(100*pid, "%edp-pid")
	}
}

// BenchmarkTable3PIDIntervals regenerates the PID interval-length sweep.
func BenchmarkTable3PIDIntervals(b *testing.B) {
	uncached(b)
	opt := benchOpt(60000)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table3(opt, []string{"adpcm_encode", "gsm_decode"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Hardware regenerates the hardware-cost comparison.
func BenchmarkTable4Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiment.Table4()
		if len(rep.Lines) != 4 {
			b.Fatal("bad table4")
		}
	}
	b.ReportMetric(float64(control.AdaptiveHardware().Gates()), "adaptive-gates")
}

// BenchmarkStabilityRemarks regenerates the Section-4 analysis report
// (analytic quantities plus RK4 validation runs).
func BenchmarkStabilityRemarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RemarksReport(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationControllerFeatures regenerates the controller
// feature ablation on two representative benchmarks.
func BenchmarkAblationControllerFeatures(b *testing.B) {
	uncached(b)
	opt := benchOpt(50000)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Ablation(opt, []string{"adpcm_encode", "gzip"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransitionStyles regenerates the XScale-vs-Transmeta
// transition-model comparison.
func BenchmarkTransitionStyles(b *testing.B) {
	uncached(b)
	opt := benchOpt(50000)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.TransitionStyles(opt, []string{"adpcm_encode", "gzip"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunMatrix measures the benchmark × scheme sweep that feeds
// Figures 9-11 under five caching regimes: cold with the shared trace
// bank (the default), cold with per-cell trace generation (the
// pre-sharing behavior), cold streaming traces from an on-disk corpus,
// warm from the in-process cache, and warm from the on-disk cache
// (models re-rendering after process death). Every regime reports
// cells/s — matrix cells retired per second, the throughput figure the
// corpus work targets — so BENCH_baseline.json gates it.
func BenchmarkRunMatrix(b *testing.B) {
	opt := benchOpt(60000, "adpcm_encode", "gsm_decode", "gzip", "swim")
	check := func(m *experiment.Matrix, err error) int {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Failures) != 0 {
			b.Fatal(m.Failures[0].Error())
		}
		return len(m.Benchmarks) * (len(m.Schemes) + 1)
	}
	reportCells := func(b *testing.B, cells int) {
		b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
	}

	b.Run("cold-shared-trace", func(b *testing.B) {
		uncached(b)
		cells := 0
		for i := 0; i < b.N; i++ {
			cells += check(experiment.RunMatrix(opt))
		}
		reportCells(b, cells)
	})
	b.Run("cold-per-cell-trace", func(b *testing.B) {
		uncached(b)
		experiment.SetTraceSharing(false)
		b.Cleanup(func() { experiment.SetTraceSharing(true) })
		cells := 0
		for i := 0; i < b.N; i++ {
			cells += check(experiment.RunMatrix(opt))
		}
		reportCells(b, cells)
	})
	b.Run("cold-corpus", func(b *testing.B) {
		uncached(b)
		copt := opt
		copt.CorpusDir = buildBenchCorpus(b, opt)
		cells := 0
		for i := 0; i < b.N; i++ {
			cells += check(experiment.RunMatrix(copt))
		}
		reportCells(b, cells)
	})
	b.Run("warm-memory", func(b *testing.B) {
		experiment.ResetCache()
		b.Cleanup(experiment.ResetCache)
		check(experiment.RunMatrix(opt)) // populate
		b.ResetTimer()
		cells := 0
		for i := 0; i < b.N; i++ {
			cells += check(experiment.RunMatrix(opt))
		}
		reportCells(b, cells)
	})
	b.Run("warm-disk", func(b *testing.B) {
		dopt := opt
		dopt.CacheDir = b.TempDir()
		experiment.ResetCache()
		b.Cleanup(experiment.ResetCache)
		check(experiment.RunMatrix(dopt)) // populate the store
		b.ResetTimer()
		cells := 0
		for i := 0; i < b.N; i++ {
			experiment.ResetCache() // drop memory: every cell decodes from disk
			cells += check(experiment.RunMatrix(dopt))
		}
		reportCells(b, cells)
	})
}

// buildBenchCorpus emits a chunked trace corpus matching opt into a
// temporary directory for the cold-corpus matrix regime.
func buildBenchCorpus(b *testing.B, opt experiment.Options) string {
	b.Helper()
	dir := b.TempDir()
	man := trace.CorpusManifest{FormatVersion: 2, Seed: opt.Seed, Instructions: opt.Instructions}
	for _, name := range opt.Benchmarks {
		prof, err := trace.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		m, err := trace.EmitCorpusMember(dir, prof, opt.Seed, opt.Instructions, 0)
		if err != nil {
			b.Fatal(err)
		}
		man.Members = append(man.Members, m)
	}
	if err := trace.WriteCorpusManifest(dir, man); err != nil {
		b.Fatal(err)
	}
	return dir
}

// ---------------------------------------------------------------------
// Micro-benchmarks for the hot components.
// ---------------------------------------------------------------------

// BenchmarkSimulatorThroughput measures raw simulated instructions per
// second of the MCD machine with no DVFS controller attached.
func BenchmarkSimulatorThroughput(b *testing.B) {
	uncached(b)
	const insts = 100000
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOne("gzip", experiment.SchemeNone, benchOpt(insts))
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.Instructions != insts {
			b.Fatal("short run")
		}
	}
	b.ReportMetric(float64(insts*int64(b.N))/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkChip measures whole-chip simulation throughput across the
// cores × governor grid, with per-domain adaptive control on every core
// and the capping governors holding a 7.5 W/core budget. The custom
// metric is chip-level simulated instructions per second — the figure
// the epoch-barrier worker pool exists to scale — so the 4-core rows
// double as the parallel-speedup record next to the single-core ones.
func BenchmarkChip(b *testing.B) {
	uncached(b)
	const instsPerCore = 30000
	for _, cores := range []int{1, 4} {
		for _, gov := range []string{"none", "static-split", "integral-gain"} {
			b.Run(fmt.Sprintf("cores=%d/gov=%s", cores, gov), func(b *testing.B) {
				opt := benchOpt(instsPerCore)
				opt.Cores = cores
				opt.Governor = gov
				if gov != "none" {
					opt.PowerCapW = 7.5 * float64(cores)
				}
				var total int64
				for i := 0; i < b.N; i++ {
					res, err := experiment.RunChip(nil, experiment.SchemeAdaptive, opt)
					if err != nil {
						b.Fatal(err)
					}
					total += res.Metrics.Instructions
				}
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-insts/s")
			})
		}
	}
}

// BenchmarkAdaptiveObserve measures one controller sampling tick.
func BenchmarkAdaptiveObserve(b *testing.B) {
	c := control.NewAdaptive(control.DefaultConfig(DomainInt))
	now := clock.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 4 * clock.Nanosecond
		c.Observe(now, i%20, 700)
	}
}

// BenchmarkTraceGeneration measures synthetic instruction generation.
func BenchmarkTraceGeneration(b *testing.B) {
	prof, err := trace.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.NewGenerator(prof, 1, int64(b.N)+1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator ran dry")
		}
	}
}

// BenchmarkChunkedReplay measures streamed replay from the chunked
// on-disk trace format through a two-chunk window: the steady-state
// cost of a corpus-backed matrix cell's instruction feed. allocs/op is
// the gated figure — per-instruction decode must stay allocation-free,
// with only the per-chunk load amortized across its instructions.
func BenchmarkChunkedReplay(b *testing.B) {
	prof, err := trace.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	const insts = 1 << 15
	gen, err := trace.NewGenerator(prof, 1, insts)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.WriteChunked(&buf, gen, insts, 4096); err != nil {
		b.Fatal(err)
	}
	c, err := trace.OpenChunked(bytes.NewReader(buf.Bytes()), int64(buf.Len()), 2)
	if err != nil {
		b.Fatal(err)
	}
	cur := c.Replay()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, ok := cur.Next()
		if !ok {
			if err := cur.Err(); err != nil {
				b.Fatal(err)
			}
			cur = c.Replay()
			if in, ok = cur.Next(); !ok {
				b.Fatal("empty trace")
			}
		}
		_ = in
	}
}

// BenchmarkMultitaperSpectrum measures the Figure-8 estimator on a
// 64K-sample series.
func BenchmarkMultitaperSpectrum(b *testing.B) {
	x := make([]float64, 1<<16)
	for i := range x {
		x[i] = float64(i%17) + float64(i%257)/10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectrum.Multitaper(x, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobalCoupling regenerates the per-domain vs globally
// coupled scaling comparison (extension E1).
func BenchmarkGlobalCoupling(b *testing.B) {
	uncached(b)
	opt := benchOpt(50000)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.GlobalComparison(opt, []string{"gzip", "swim"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQRefSweep regenerates the reference-occupancy sensitivity
// sweep (extension E2).
func BenchmarkQRefSweep(b *testing.B) {
	uncached(b)
	opt := benchOpt(50000)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.QRefSweep(opt, []string{"gsm_decode"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterfaceStudy regenerates the synchronization-interface
// comparison (extension E3).
func BenchmarkInterfaceStudy(b *testing.B) {
	uncached(b)
	opt := benchOpt(40000)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.InterfaceStudy(opt, []string{"gsm_decode"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionStudy regenerates the 4- vs 5-domain partition
// comparison (extension E4).
func BenchmarkPartitionStudy(b *testing.B) {
	uncached(b)
	opt := benchOpt(40000)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.PartitionStudy(opt, []string{"gzip"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelaySweep regenerates the time-delay sweep (extension E5).
func BenchmarkDelaySweep(b *testing.B) {
	uncached(b)
	opt := benchOpt(30000)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.DelaySweep(opt, []string{"gsm_decode"}); err != nil {
			b.Fatal(err)
		}
	}
}
