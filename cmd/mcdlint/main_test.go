package main

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the mcdlint binary once per test.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mcdlint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building mcdlint: %v\n%s", err, out)
	}
	return bin
}

// run executes the binary in dir and returns its combined output and
// exit code.
func runLint(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running mcdlint: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// TestFixtureViolations runs the multichecker end to end against the
// fixture module, which seeds at least one violation per analyzer:
// exit status 1 and a diagnostic from each of the four checkers.
func TestFixtureViolations(t *testing.T) {
	bin := buildLint(t)
	out, code := runLint(t, bin, "../../internal/lint/testdata/src/fixture.example", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	for _, want := range []string{
		"[detrange] range over map",
		"[detsource] wall clock time.Now",
		"[detsource] global math/rand",
		"[detsource] %p formats a memory address",
		"[ctxflow] SpawnAll starts goroutines",
		"[ctxflow] Sweep accepts a context.Context but never propagates",
		"[errtaxonomy] Run returns a raw errors.New",
		"[errtaxonomy] Run returns fmt.Errorf without %w",
		"[schemeswitch] switch on Scheme",
		"[schemeswitch] tagless switch comparing Scheme values",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// The escape hatch must have silenced the waived loop.
	if strings.Contains(out, "Fingerprint") || strings.Contains(out, "lintdirective") {
		t.Errorf("suppressed or directive diagnostics leaked into output:\n%s", out)
	}
}

// TestRepoIsClean is the acceptance gate: the shipped tree has zero
// violations, so the binary exits 0 and prints nothing.
func TestRepoIsClean(t *testing.T) {
	bin := buildLint(t)
	out, code := runLint(t, bin, "../..", "./...")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("mcdlint on the repo: exit %d\n%s", code, out)
	}
}

// TestSelectAnalyzers exercises -run filtering and -list.
func TestSelectAnalyzers(t *testing.T) {
	bin := buildLint(t)
	out, code := runLint(t, bin, "../../internal/lint/testdata/src/fixture.example", "-run", "errtaxonomy", "./internal/experiment")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if strings.Contains(out, "[ctxflow]") || !strings.Contains(out, "[errtaxonomy]") {
		t.Errorf("-run errtaxonomy ran the wrong analyzers:\n%s", out)
	}

	out, code = runLint(t, bin, ".", "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d\n%s", code, out)
	}
	for _, name := range []string{"detrange", "detsource", "ctxflow", "errtaxonomy", "schemeswitch"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}
