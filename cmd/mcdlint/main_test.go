package main

import (
	"encoding/json"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the mcdlint binary once per test.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mcdlint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building mcdlint: %v\n%s", err, out)
	}
	return bin
}

// run executes the binary in dir and returns its combined output and
// exit code.
func runLint(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running mcdlint: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// TestFixtureViolations runs the multichecker end to end against the
// fixture module, which seeds at least one violation per analyzer:
// exit status 1 and a diagnostic from each of the four checkers.
func TestFixtureViolations(t *testing.T) {
	bin := buildLint(t)
	out, code := runLint(t, bin, "../../internal/lint/testdata/src/fixture.example", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	for _, want := range []string{
		"[detrange] range over map",
		"[detsource] wall clock time.Now",
		"[detsource] global math/rand",
		"[detsource] %p formats a memory address",
		"[ctxflow] SpawnAll starts goroutines",
		"[ctxflow] Sweep accepts a context.Context but never propagates",
		"[errtaxonomy] Run returns a raw errors.New",
		"[errtaxonomy] Run returns fmt.Errorf without %w",
		"[schemeswitch] switch on Scheme",
		"[schemeswitch] tagless switch comparing Scheme values",
		"[dettaint] wall clock time.Now is reachable from the simulation entry points via mcd.RunSampled -> stats.Hop -> [iface] stats.(WallSampler).Sample -> stats.nowMillis",
		"[dettaint] filesystem enumeration os.ReadDir reads host state",
		"[dettaint] select with multiple communication cases",
		"[cachekey] Options.Depth is read on the run path (harness.go:",
		"[cachekey] key() strips RenderRequest.Rounds",
		"[cachekey] RenderRequest.Width flows into Options.Width, which has a harness default",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// The escape hatch must have silenced the waived loop.
	if strings.Contains(out, "Fingerprint") || strings.Contains(out, "lintdirective") {
		t.Errorf("suppressed or directive diagnostics leaked into output:\n%s", out)
	}
}

// TestRepoIsClean is the acceptance gate: the shipped tree has zero
// violations, so the binary exits 0 and prints nothing.
func TestRepoIsClean(t *testing.T) {
	bin := buildLint(t)
	out, code := runLint(t, bin, "../..", "./...")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("mcdlint on the repo: exit %d\n%s", code, out)
	}
}

// TestWholeProgramAnalyzersCleanOnRepo is the tentpole acceptance
// gate in isolation: the interprocedural analyzers find nothing to
// report in the shipped tree.
func TestWholeProgramAnalyzersCleanOnRepo(t *testing.T) {
	bin := buildLint(t)
	out, code := runLint(t, bin, "../..", "-run", "dettaint,cachekey", "./...")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("mcdlint -run dettaint,cachekey on the repo: exit %d\n%s", code, out)
	}
}

// TestNoStaleAllowDirectives pins the directive audit: every
// //lint:allow in the tree names a known analyzer, carries a reason,
// and suppresses a diagnostic that actually fires.
func TestNoStaleAllowDirectives(t *testing.T) {
	bin := buildLint(t)
	out, code := runLint(t, bin, "../..", "-run", "lintdirective", "./...")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("stale //lint:allow directives in the repo: exit %d\n%s", code, out)
	}
}

// TestJSONOutput checks the machine-readable mode: parseable, carries
// file/line/analyzer/message, includes waived findings with their
// allow reasons, and keeps the exit-code contract.
func TestJSONOutput(t *testing.T) {
	bin := buildLint(t)

	// The repo is clean, so -json exits 0 — but the six deliberate
	// cachekey exclusions must still appear, each with its reason.
	out, code := runLint(t, bin, "../..", "-json", "./internal/experiment")
	if code != 0 {
		t.Fatalf("-json on a clean package: exit %d\n%s", code, out)
	}
	var diags []struct {
		File        string `json:"file"`
		Line        int    `json:"line"`
		Col         int    `json:"col"`
		Analyzer    string `json:"analyzer"`
		Message     string `json:"message"`
		AllowReason string `json:"allow_reason"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	waived := 0
	for _, d := range diags {
		if d.AllowReason == "" {
			t.Errorf("clean tree emitted an unwaived diagnostic: %+v", d)
			continue
		}
		waived++
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("waived diagnostic missing a field: %+v", d)
		}
	}
	if waived < 6 {
		t.Errorf("got %d waived diagnostics for internal/experiment, want the 6 documented cachekey exclusions:\n%s", waived, out)
	}

	// On the fixture module, -json still exits 1 for active findings.
	out, code = runLint(t, bin, "../../internal/lint/testdata/src/fixture.example", "-json", "./...")
	if code != 1 {
		t.Fatalf("-json on the fixture module: exit %d, want 1\n%s", code, out)
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json fixture output is not a JSON array: %v\n%s", err, out)
	}
}

// TestSelectAnalyzers exercises -run filtering and -list.
func TestSelectAnalyzers(t *testing.T) {
	bin := buildLint(t)
	out, code := runLint(t, bin, "../../internal/lint/testdata/src/fixture.example", "-run", "errtaxonomy", "./internal/experiment")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if strings.Contains(out, "[ctxflow]") || !strings.Contains(out, "[errtaxonomy]") {
		t.Errorf("-run errtaxonomy ran the wrong analyzers:\n%s", out)
	}

	out, code = runLint(t, bin, ".", "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d\n%s", code, out)
	}
	for _, name := range []string{"detrange", "detsource", "ctxflow", "errtaxonomy", "schemeswitch", "dettaint", "cachekey"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}
