// Command mcdlint runs the repo's custom determinism and harness
// invariant analyzers (see docs/LINTING.md) over Go packages.
//
// Usage:
//
//	mcdlint [-run detrange,ctxflow] [-list] [packages]
//
// Packages default to ./... relative to the working directory. The
// exit status is 0 when the tree is clean, 1 when any diagnostic is
// reported, and 2 when the packages cannot be loaded.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mcddvfs/internal/lint"
	"mcddvfs/internal/lint/analysis"
	"mcddvfs/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mcdlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// The full suite always runs — that keeps //lint:allow directive
	// validation exact — and -run filters which diagnostics surface.
	selected := make(map[string]bool)
	if *only != "" {
		byName := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = true
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !byName[name] {
				fmt.Fprintf(os.Stderr, "mcdlint: unknown analyzer %q\n", name)
				return 2
			}
			selected[name] = true
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdlint: %v\n", err)
		return 2
	}

	diags, err := analysis.Run(lint.Targets(pkgs), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdlint: %v\n", err)
		return 2
	}
	if len(selected) > 0 {
		kept := diags[:0]
		for _, d := range diags {
			if selected[d.Analyzer] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	if len(diags) == 0 {
		return 0
	}

	cwd, _ := os.Getwd()
	fset := pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	return 1
}
