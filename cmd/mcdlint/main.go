// Command mcdlint runs the repo's custom determinism and harness
// invariant analyzers (see docs/LINTING.md) over Go packages.
//
// Usage:
//
//	mcdlint [-run detrange,ctxflow] [-list] [-json] [packages]
//
// Packages default to ./... relative to the working directory. The
// exit status is 0 when the tree is clean, 1 when any diagnostic is
// reported, and 2 when the packages cannot be loaded.
//
// With -json, diagnostics are emitted as a JSON array of objects
// {file, line, col, analyzer, message, allow_reason} — one per
// finding, including findings waived by a //lint:allow directive
// (those carry the directive's reason in allow_reason) so CI can
// annotate pull requests with both. The exit-code contract is
// unchanged: only unwaived diagnostics make the run exit 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mcddvfs/internal/lint"
	"mcddvfs/internal/lint/analysis"
	"mcddvfs/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiagnostic is the machine-readable form of one finding.
type jsonDiagnostic struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Analyzer    string `json:"analyzer"`
	Message     string `json:"message"`
	AllowReason string `json:"allow_reason,omitempty"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("mcdlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON (including //lint:allow-waived ones)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// The full suite always runs — that keeps //lint:allow directive
	// validation exact — and -run filters which diagnostics surface.
	selected := make(map[string]bool)
	if *only != "" {
		byName := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = true
		}
		// The directive validator is selectable too, so CI can audit
		// //lint:allow hygiene in isolation.
		byName["lintdirective"] = true
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !byName[name] {
				fmt.Fprintf(os.Stderr, "mcdlint: unknown analyzer %q\n", name)
				return 2
			}
			selected[name] = true
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdlint: %v\n", err)
		return 2
	}

	diags, err := analysis.Run(lint.Targets(pkgs), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdlint: %v\n", err)
		return 2
	}
	if len(selected) > 0 {
		kept := diags[:0]
		for _, d := range diags {
			if selected[d.Analyzer] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	active := analysis.Active(diags)

	cwd, _ := os.Getwd()
	fset := pkgs[0].Fset
	relName := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}

	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			out = append(out, jsonDiagnostic{
				File:        relName(pos.Filename),
				Line:        pos.Line,
				Col:         pos.Column,
				Analyzer:    d.Analyzer,
				Message:     d.Message,
				AllowReason: d.AllowReason,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "mcdlint: %v\n", err)
			return 2
		}
		if len(active) == 0 {
			return 0
		}
		return 1
	}

	if len(active) == 0 {
		return 0
	}
	for _, d := range active {
		pos := fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: [%s] %s\n", relName(pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	return 1
}
