// Command mcdserve runs the DVFS-evaluation service: an HTTP/JSON
// facade over the experiment harness with admission control, a
// circuit-broken disk-cache tier, cross-request single-flight, and
// graceful drain. See docs/SERVICE.md for the API.
//
// Usage:
//
//	mcdserve -addr :8344 -cache-dir results/.cache
//
// Send SIGINT/SIGTERM to drain: the listener closes, in-flight renders
// get -shutdown-grace to finish, then remaining work is cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcddvfs/internal/cliflags"
	"mcddvfs/internal/serve"
)

func main() {
	var (
		addr             = flag.String("addr", "127.0.0.1:8344", "listen address")
		workers          = flag.Int("workers", 4, "concurrent renders")
		queueDepth       = flag.Int("queue-depth", 16, "renders allowed to wait behind the workers before 429 shedding")
		maxTimeout       = flag.Duration("max-timeout", 10*time.Minute, "clamp on client-requested timeout_ms")
		breakerThreshold = flag.Int("breaker-threshold", 3, "consecutive disk-cache I/O failures that open the circuit breaker")
		breakerCooldown  = flag.Duration("breaker-cooldown", 10*time.Second, "how long the breaker stays open before probing the disk cache again")
		chaos            = flag.Bool("chaos", false, "mount POST /debugz/cache-faults (fault injection under the live cache; test use only)")

		timeout       = cliflags.Timeout(flag.CommandLine, 2*time.Minute)
		cacheDir      = cliflags.CacheDir(flag.CommandLine, "results/.cache")
		cacheMaxBytes = cliflags.CacheMaxBytes(flag.CommandLine)
		grace         = cliflags.ShutdownGrace(flag.CommandLine, 15*time.Second)
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		CacheDir:         *cacheDir,
		CacheMaxBytes:    *cacheMaxBytes,
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		EnableChaos:      *chaos,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatalf("mcdserve: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("mcdserve: listening on %s (cache %q, %d workers, queue %d)", *addr, *cacheDir, *workers, *queueDepth)

	select {
	case err := <-errCh:
		log.Fatalf("mcdserve: %v", err)
	case <-ctx.Done():
	}
	stop()

	log.Printf("mcdserve: signal received, draining (grace %v)", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("mcdserve: listener shutdown: %v", err)
	}
	if err := srv.Shutdown(shCtx); err != nil {
		if errors.Is(err, serve.ErrForcedDrain) {
			log.Printf("mcdserve: %v", err)
			os.Exit(1)
		}
		log.Fatalf("mcdserve: %v", err)
	}
	log.Printf("mcdserve: drained cleanly")
}
