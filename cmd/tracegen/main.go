// Command tracegen generates, saves, inspects, and replays synthetic
// workload traces.
//
// Usage:
//
//	tracegen -bench gsm_decode -insts 500000 -o gsm.mcdt   # save a trace
//	tracegen -stats gsm.mcdt                               # inspect it
//	tracegen -replay gsm.mcdt -scheme adaptive             # simulate it
package main

import (
	"flag"
	"fmt"
	"os"

	"mcddvfs/internal/experiment"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "epic_decode", "benchmark to generate")
		insts  = flag.Int64("insts", 500000, "instructions to generate")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "write the trace to this file")
		stats  = flag.String("stats", "", "print statistics for a trace file and exit")
		replay = flag.String("replay", "", "simulate a saved trace file")
		scheme = flag.String("scheme", "adaptive", "DVFS scheme for -replay")
	)
	flag.Parse()

	switch {
	case *stats != "":
		if err := printStats(*stats); err != nil {
			fail(err)
		}
	case *replay != "":
		if err := replayTrace(*replay, *scheme); err != nil {
			fail(err)
		}
	case *out != "":
		if err := generate(*bench, *insts, *seed, *out); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "tracegen: pass -o, -stats or -replay; see -h")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func generate(bench string, insts, seed int64, out string) error {
	prof, err := trace.ByName(bench)
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(prof, seed, insts)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := trace.Write(f, gen, insts)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions of %s to %s\n", n, bench, out)
	return f.Close()
}

func openTrace(path string) (*trace.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

func printStats(path string) error {
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var counts [isa.NumClasses]int64
	var branches, taken int64
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		counts[in.Class]++
		if in.Class == isa.Branch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("trace %s: %q, %d instructions\n", path, r.Name(), r.Count())
	for c := 0; c < isa.NumClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		fmt.Printf("  %-7s %9d (%5.2f%%)\n", isa.Class(c), counts[c],
			100*float64(counts[c])/float64(r.Count()))
	}
	if branches > 0 {
		fmt.Printf("  taken branch fraction: %.3f\n", float64(taken)/float64(branches))
	}
	return nil
}

func replayTrace(path, scheme string) error {
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg := mcd.DefaultConfig()
	p, err := mcd.New(cfg)
	if err != nil {
		return err
	}
	if err := experiment.AttachScheme(p, experiment.Scheme(scheme), experiment.DefaultOptions()); err != nil {
		return err
	}
	res, err := p.Run(r)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %q (%d insts): time=%v energy=%.4gJ IPC=%.3f\n",
		res.Benchmark, res.Metrics.Instructions, res.Metrics.ExecTime,
		res.Metrics.EnergyJ, res.IPC)
	return nil
}
