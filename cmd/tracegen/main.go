// Command tracegen generates, saves, inspects, and replays synthetic
// workload traces, and emits whole trace corpora for the experiment
// harness.
//
// Usage:
//
//	tracegen -bench gsm_decode -insts 500000 -o gsm.mcdc   # save a trace
//	tracegen -stats gsm.mcdc                               # inspect it
//	tracegen -replay gsm.mcdc -scheme adaptive             # simulate it
//	tracegen -corpus traces/ -insts 500000 -seed 1         # emit a corpus
//
// Traces are written in the chunked v2 format (compressed fixed-size
// chunks, per-chunk CRC, seekable index) unless -format mcdt selects
// the legacy monolithic stream; -stats and -replay sniff the magic and
// stream either format from disk with bounded memory. A corpus
// directory (see `internal/trace`) bundles one chunked trace per
// benchmark plus a checksummed manifest, and is what the experiment
// harness's -corpus flag consumes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcddvfs/internal/experiment"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark to generate (default epic_decode); for -corpus, a comma-separated subset (empty = all benchmarks)")
		insts  = flag.Int64("insts", 500000, "instructions to generate")
		seed   = flag.Int64("seed", 1, "harness seed (streams are recorded at the harness's derived stream seed)")
		out    = flag.String("o", "", "write one trace to this file")
		format = flag.String("format", "chunked", "output format for -o: chunked (v2) or mcdt (legacy v1)")
		chunk  = flag.Int("chunk", 0, "instructions per chunk for chunked output (0 = default)")
		corpus = flag.String("corpus", "", "emit a trace corpus (one chunked trace per benchmark + manifest) into this directory")
		stats  = flag.String("stats", "", "print statistics for a trace file and exit")
		replay = flag.String("replay", "", "simulate a saved trace file")
		scheme = flag.String("scheme", "adaptive", "DVFS scheme for -replay")
	)
	flag.Parse()

	switch {
	case *stats != "":
		if err := printStats(*stats); err != nil {
			fail(err)
		}
	case *replay != "":
		if err := replayTrace(*replay, *scheme); err != nil {
			fail(err)
		}
	case *corpus != "":
		if err := emitCorpus(*corpus, *bench, *insts, *seed, *chunk); err != nil {
			fail(err)
		}
	case *out != "":
		if err := generate(*bench, *insts, *seed, *out, *format, *chunk); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "tracegen: pass -o, -corpus, -stats or -replay; see -h")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func generate(bench string, insts, seed int64, out, format string, chunk int) error {
	if bench == "" {
		bench = "epic_decode"
	}
	prof, err := trace.ByName(bench)
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(prof, seed, insts)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	var n int64
	switch format {
	case "chunked":
		var bytes int64
		bytes, err = trace.WriteChunked(f, gen, insts, chunk)
		n = insts
		if err == nil {
			fmt.Printf("wrote %d instructions of %s to %s (chunked v2, %d bytes)\n", n, bench, out, bytes)
		}
	case "mcdt":
		n, err = trace.Write(f, gen, insts)
		if err == nil {
			fmt.Printf("wrote %d instructions of %s to %s\n", n, bench, out)
		}
	default:
		return fmt.Errorf("unknown -format %q (chunked or mcdt)", format)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// emitCorpus records every selected benchmark at the harness seed into
// dir, writes the manifest, and runs the full integrity verification
// over the result.
func emitCorpus(dir, benchCSV string, insts, seed int64, chunk int) error {
	benches := trace.Names()
	if benchCSV != "" {
		benches = strings.Split(benchCSV, ",")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	man := trace.CorpusManifest{FormatVersion: 2, Seed: seed, Instructions: insts}
	for _, bench := range benches {
		prof, err := trace.ByName(strings.TrimSpace(bench))
		if err != nil {
			return err
		}
		m, err := trace.EmitCorpusMember(dir, prof, seed, insts, chunk)
		if err != nil {
			return err
		}
		man.Members = append(man.Members, m)
		fmt.Printf("  %-14s %s  sha256=%s...\n", m.Benchmark, m.File, m.SHA256[:12])
	}
	if err := trace.WriteCorpusManifest(dir, man); err != nil {
		return err
	}
	if err := trace.VerifyCorpus(dir); err != nil {
		return fmt.Errorf("verification after emit: %w", err)
	}
	fmt.Printf("corpus %s: %d members, %d instructions each, seed %d (verified)\n",
		dir, len(man.Members), insts, seed)
	return nil
}

// openedTrace is a disk-backed trace stream of either format, plus the
// metadata the inspection commands print. Both formats stream with
// bounded memory: v1 through a fixed read buffer, v2 through the
// chunk window.
type openedTrace struct {
	src    trace.Source
	name   string
	count  int64
	format string
	// streamErr distinguishes mid-stream corruption from clean EOF.
	streamErr func() error
	// residency reports (peakBytes, boundBytes) after streaming; nil
	// when the format has no per-chunk accounting (v1).
	residency func() (int64, int64)
	close     func() error
}

// openTraceStream sniffs the file magic and opens the right reader.
func openTraceStream(path string) (*openedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: reading magic: %w", path, err)
	}
	if string(magic[:]) == "MCDC" {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		c, err := trace.OpenChunked(f, st.Size(), 0)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		cur := c.Replay()
		return &openedTrace{
			src:       cur,
			name:      c.Name(),
			count:     c.Count(),
			format:    fmt.Sprintf("chunked v2 (%d chunks of %d insts, %d bytes on disk)", c.Chunks(), c.ChunkInstructions(), c.CompressedBytes()),
			streamErr: cur.Err,
			residency: func() (int64, int64) { return c.PeakResidentBytes(), c.WindowBytes() },
			close:     f.Close,
		}, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		f.Close()
		return nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &openedTrace{
		src:       r,
		name:      r.Name(),
		count:     r.Count(),
		format:    "monolithic v1",
		streamErr: r.Err,
		close:     f.Close,
	}, nil
}

func printStats(path string) error {
	ot, err := openTraceStream(path)
	if err != nil {
		return err
	}
	defer ot.close()
	var counts [isa.NumClasses]int64
	var branches, taken int64
	for {
		in, ok := ot.src.Next()
		if !ok {
			break
		}
		counts[in.Class]++
		if in.Class == isa.Branch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	if err := ot.streamErr(); err != nil {
		return err
	}
	fmt.Printf("trace %s: %q, %d instructions, %s\n", path, ot.name, ot.count, ot.format)
	for c := 0; c < isa.NumClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		fmt.Printf("  %-7s %9d (%5.2f%%)\n", isa.Class(c), counts[c],
			100*float64(counts[c])/float64(ot.count))
	}
	if branches > 0 {
		fmt.Printf("  taken branch fraction: %.3f\n", float64(taken)/float64(branches))
	}
	if ot.residency != nil {
		peak, bound := ot.residency()
		fmt.Printf("  peak resident: %d bytes (window bound %d bytes)\n", peak, bound)
	}
	return nil
}

func replayTrace(path, scheme string) error {
	ot, err := openTraceStream(path)
	if err != nil {
		return err
	}
	defer ot.close()
	cfg := mcd.DefaultConfig()
	p, err := mcd.New(cfg)
	if err != nil {
		return err
	}
	if err := experiment.AttachScheme(p, experiment.Scheme(scheme), experiment.DefaultOptions()); err != nil {
		return err
	}
	res, err := p.Run(ot.src)
	if err != nil {
		return err
	}
	if err := ot.streamErr(); err != nil {
		return err
	}
	fmt.Printf("replayed %q (%d insts): time=%v energy=%.4gJ IPC=%.3f\n",
		res.Benchmark, res.Metrics.Instructions, res.Metrics.ExecTime,
		res.Metrics.EnergyJ, res.IPC)
	if ot.residency != nil {
		peak, bound := ot.residency()
		fmt.Printf("peak resident: %d bytes (window bound %d bytes)\n", peak, bound)
	}
	return nil
}
