// Command benchjson converts `go test -bench` output into a small JSON
// document, so benchmark baselines can be recorded in the repository
// (BENCH_baseline.json) and compared across commits.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSimulatorThroughput -benchmem . | go run ./cmd/benchjson
//	go test -bench . ./... | go run ./cmd/benchjson -out BENCH_baseline.json
//
// Repeated runs of the same benchmark (from -count=N) are merged
// best-of-N — the fastest ns/op line wins — because the minimum of a
// few runs is far more stable on shared machines than any single run.
//
// With -compare it instead diffs two such documents and exits 1 when
// any benchmark present in both regressed beyond tolerance. Two gates
// run per benchmark:
//
//   - wall clock, at -tolerance percent: benchmarks reporting a
//     throughput metric (sim-insts/s or cells/s) are gated on that figure (a drop
//     beyond tolerance fails; a gain beyond it is flagged as a stale
//     baseline worth refreshing); all others are gated on ns/op. This
//     gate is deliberately coarse — wall time on shared machines
//     drifts ±20-30% between invocations, so it only trips on
//     catastrophic slowdowns.
//   - allocs/op, at -alloc-tolerance percent: allocation counts are
//     deterministic run to run, so this gate can be tight. It is the
//     one that catches per-iteration garbage creeping back into the
//     hot path.
//
// Speedups and allocation drops never fail:
//
//	go run ./cmd/benchjson -compare -tolerance 40 -alloc-tolerance 10 BENCH_baseline.json bench_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every remaining "value unit" pair on the line
	// (custom ReportMetric units like sim-insts/s, plus B/op and
	// allocs/op when -benchmem is on).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the document benchjson emits.
type Baseline struct {
	// Context lines (goos/goarch/pkg/cpu) from the bench output.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	compare := flag.Bool("compare", false, "compare two baseline JSON files (old new) instead of parsing stdin")
	tolerance := flag.Float64("tolerance", 25, "with -compare, max allowed wall-clock (ns/op or sim-insts/s) regression in percent")
	allocTolerance := flag.Float64("alloc-tolerance", 10, "with -compare, max allowed allocs/op regression in percent")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareBaselines(flag.Arg(0), flag.Arg(1), *tolerance, *allocTolerance))
	}

	base := Baseline{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				base.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: skipping unparseable line: %s\n", line)
			continue
		}
		addBest(&base, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	blob, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob) //nolint:errcheck // stdout
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// addBest records b in the baseline, merging -count=N repeats of the
// same benchmark best-of-N: the fastest ns/op line wins, because the
// minimum over a few runs is far more stable against scheduler and
// frequency noise than any individual run.
func addBest(base *Baseline, b Benchmark) {
	for i := range base.Benchmarks {
		if base.Benchmarks[i].Name == b.Name {
			if b.NsPerOp < base.Benchmarks[i].NsPerOp {
				base.Benchmarks[i] = b
			}
			return
		}
	}
	base.Benchmarks = append(base.Benchmarks, b)
}

// throughputUnits are the custom metrics the benchmarks report; when
// both sides of a comparison carry one (first match wins), the gate
// runs on it directly — it is the figure the performance roadmap
// tracks — instead of on ns/op. sim-insts/s is the simulator core's
// figure, cells/s the matrix harness's.
var throughputUnits = []string{"sim-insts/s", "cells/s"}

// allocUnit is -benchmem's allocation-count column. Unlike wall time
// it is deterministic between runs, so it gets its own, much tighter
// gate.
const allocUnit = "allocs/op"

// compareBaselines diffs old vs new by benchmark name and returns the
// process exit code: 0 when every shared benchmark's regression is
// within tolerance, 1 past it, 2 on unusable input. Two gates run per
// benchmark: wall clock at tolerance percent (sim-insts/s when both
// sides report it, ns/op otherwise) and allocs/op at allocTolerance
// percent. Benchmarks present on only one side are reported but never
// fail the comparison — adding or retiring a benchmark is not a
// regression. Remaining metric deltas (B/op, ...) are informational.
func compareBaselines(oldPath, newPath string, tolerance, allocTolerance float64) int {
	load := func(path string) (map[string]Benchmark, []string, bool) {
		blob, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return nil, nil, false
		}
		var b Baseline
		if err := json.Unmarshal(blob, &b); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			return nil, nil, false
		}
		m := make(map[string]Benchmark, len(b.Benchmarks))
		var names []string
		for _, bench := range b.Benchmarks {
			if _, dup := m[bench.Name]; !dup {
				names = append(names, bench.Name)
			}
			m[bench.Name] = bench
		}
		return m, names, true
	}
	oldB, _, ok := load(oldPath)
	if !ok {
		return 2
	}
	newB, newNames, ok := load(newPath)
	if !ok {
		return 2
	}

	failed := false
	compared := 0
	for _, name := range newNames {
		nb := newB[name]
		ob, shared := oldB[name]
		if !shared {
			fmt.Printf("%-50s new benchmark (%.0f ns/op), not compared\n", name, nb.NsPerOp)
			continue
		}
		compared++
		delta := 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		verdict := "ok"
		throughputUnit := ""
		for _, unit := range throughputUnits {
			if ob.Metrics[unit] > 0 && nb.Metrics[unit] > 0 {
				throughputUnit = unit
				break
			}
		}
		if throughputUnit != "" {
			// Throughput benchmark: gate on the metric itself.
			oThr, nThr := ob.Metrics[throughputUnit], nb.Metrics[throughputUnit]
			tDelta := 100 * (nThr - oThr) / oThr
			switch {
			case tDelta < -tolerance:
				verdict = fmt.Sprintf("FAIL (%s %+.1f%%, tolerance ±%.0f%%)", throughputUnit, tDelta, tolerance)
				failed = true
			case tDelta > tolerance:
				verdict = fmt.Sprintf("ok (%s %+.1f%% — baseline looks stale, refresh it)", throughputUnit, tDelta)
			}
		} else if delta > tolerance {
			verdict = fmt.Sprintf("FAIL (> %+.0f%%)", tolerance)
			failed = true
		}
		if oa, na := ob.Metrics[allocUnit], nb.Metrics[allocUnit]; oa > 0 && na > 0 {
			if aDelta := 100 * (na - oa) / oa; aDelta > allocTolerance {
				verdict = fmt.Sprintf("FAIL (%s %+.1f%%, tolerance ±%.0f%%)", allocUnit, aDelta, allocTolerance)
				failed = true
			}
		}
		fmt.Printf("%-50s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n",
			name, ob.NsPerOp, nb.NsPerOp, delta, verdict)
		var units []string
		for unit := range nb.Metrics {
			if _, ok := ob.Metrics[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, nv := ob.Metrics[unit], nb.Metrics[unit]
			if ov == 0 {
				continue
			}
			fmt.Printf("  %-48s %12.4g -> %12.4g %s  %+7.1f%%\n",
				"", ov, nv, unit, 100*(nv-ov)/ov)
		}
	}
	for name := range oldB {
		if _, ok := newB[name]; !ok {
			fmt.Printf("%-50s missing from %s\n", name, newPath)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark appears in both files")
		return 2
	}
	if failed {
		fmt.Printf("\nFAIL: at least one benchmark regressed beyond tolerance (wall ±%.0f%%, %s ±%.0f%%)\n", tolerance, allocUnit, allocTolerance)
		return 1
	}
	fmt.Printf("\nok: %d benchmarks within tolerance of %s (wall ±%.0f%%, %s ±%.0f%%)\n", compared, oldPath, tolerance, allocUnit, allocTolerance)
	return 0
}

// parseLine parses one "BenchmarkName-8  5  87828868 ns/op  1138580
// sim-insts/s  ..." line: a name, an iteration count, then alternating
// value/unit pairs.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		if f[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[f[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
