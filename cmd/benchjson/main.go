// Command benchjson converts `go test -bench` output into a small JSON
// document, so benchmark baselines can be recorded in the repository
// (BENCH_baseline.json) and compared across commits.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSimulatorThroughput -benchmem . | go run ./cmd/benchjson
//	go test -bench . ./... | go run ./cmd/benchjson -out BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every remaining "value unit" pair on the line
	// (custom ReportMetric units like sim-insts/s, plus B/op and
	// allocs/op when -benchmem is on).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the document benchjson emits.
type Baseline struct {
	// Context lines (goos/goarch/pkg/cpu) from the bench output.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	base := Baseline{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				base.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: skipping unparseable line: %s\n", line)
			continue
		}
		base.Benchmarks = append(base.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	blob, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob) //nolint:errcheck // stdout
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkName-8  5  87828868 ns/op  1138580
// sim-insts/s  ..." line: a name, an iteration count, then alternating
// value/unit pairs.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		if f[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[f[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
