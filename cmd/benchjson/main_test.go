package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSimulatorThroughput-8   5   87828868 ns/op   1138580 sim-insts/s   3865738 B/op   201 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkSimulatorThroughput-8" || b.Iterations != 5 {
		t.Errorf("parsed %q/%d", b.Name, b.Iterations)
	}
	if b.NsPerOp != 87828868 {
		t.Errorf("ns/op = %v", b.NsPerOp)
	}
	if b.Metrics["sim-insts/s"] != 1138580 || b.Metrics["allocs/op"] != 201 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if _, ok := parseLine("Benchmark   garbage"); ok {
		t.Error("garbage line parsed")
	}
}

// TestAddBestMergesRepeats asserts -count=N repeats collapse to the
// fastest run, the statistic the comparison gate is defined over.
func TestAddBestMergesRepeats(t *testing.T) {
	var base Baseline
	addBest(&base, Benchmark{Name: "BenchmarkX", NsPerOp: 100, Metrics: map[string]float64{"sim-insts/s": 10}})
	addBest(&base, Benchmark{Name: "BenchmarkX", NsPerOp: 80, Metrics: map[string]float64{"sim-insts/s": 12}})
	addBest(&base, Benchmark{Name: "BenchmarkX", NsPerOp: 120, Metrics: map[string]float64{"sim-insts/s": 8}})
	addBest(&base, Benchmark{Name: "BenchmarkY", NsPerOp: 7})
	if len(base.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(base.Benchmarks))
	}
	if got := base.Benchmarks[0]; got.NsPerOp != 80 || got.Metrics["sim-insts/s"] != 12 {
		t.Errorf("best-of merge kept %+v", got)
	}
}

// writeBaseline marshals benches to a temp baseline file.
func writeBaseline(t *testing.T, dir, name string, benches ...Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(Baseline{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareGatesOnThroughput exercises the exit codes of the
// comparison CI gates on: throughput benchmarks judged on sim-insts/s,
// others on ns/op, speedups never failing.
func TestCompareGatesOnThroughput(t *testing.T) {
	dir := t.TempDir()
	thr := func(ns, insts float64) Benchmark {
		return Benchmark{Name: "BenchmarkThroughput", NsPerOp: ns, Metrics: map[string]float64{"sim-insts/s": insts}}
	}
	plain := func(ns float64) Benchmark {
		return Benchmark{Name: "BenchmarkPlain", NsPerOp: ns}
	}
	old := writeBaseline(t, dir, "old.json", thr(100, 1000), plain(100))

	cases := []struct {
		name string
		new  []Benchmark
		want int
	}{
		{"unchanged", []Benchmark{thr(100, 1000), plain(100)}, 0},
		{"within tolerance", []Benchmark{thr(108, 930), plain(109)}, 0},
		{"throughput drop fails", []Benchmark{thr(130, 850), plain(100)}, 1},
		// ns/op got worse but the gated metric did not: engine work per
		// op can legitimately grow while sim-insts/s holds.
		{"throughput holds despite ns/op", []Benchmark{thr(150, 995), plain(100)}, 0},
		{"plain ns/op regression fails", []Benchmark{thr(100, 1000), plain(120)}, 1},
		{"speedup passes", []Benchmark{thr(50, 2000), plain(10)}, 0},
		{"one-sided benchmarks never fail", []Benchmark{{Name: "BenchmarkNew", NsPerOp: 5}, thr(100, 1000)}, 0},
	}
	for _, tc := range cases {
		newPath := writeBaseline(t, dir, "new.json", tc.new...)
		if got := compareBaselines(old, newPath, 10, 10); got != tc.want {
			t.Errorf("%s: exit %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestCompareGatesOnAllocs exercises the second, tighter gate:
// allocs/op is deterministic between runs, so it fails at its own
// tolerance even when wall clock is within the coarse one.
func TestCompareGatesOnAllocs(t *testing.T) {
	dir := t.TempDir()
	bench := func(ns, allocs float64) Benchmark {
		return Benchmark{Name: "BenchmarkAlloc", NsPerOp: ns, Metrics: map[string]float64{"allocs/op": allocs}}
	}
	old := writeBaseline(t, dir, "old.json", bench(100, 200))

	cases := []struct {
		name string
		new  Benchmark
		want int
	}{
		{"allocs unchanged", bench(100, 200), 0},
		{"allocs within tolerance", bench(100, 218), 0},
		{"allocs regress past tolerance", bench(100, 230), 1},
		{"allocs regress despite faster wall clock", bench(60, 300), 1},
		{"allocs drop passes", bench(100, 120), 0},
		{"no alloc metric falls back to wall gate", Benchmark{Name: "BenchmarkAlloc", NsPerOp: 110}, 0},
	}
	for _, tc := range cases {
		newPath := writeBaseline(t, dir, "new.json", tc.new)
		if got := compareBaselines(old, newPath, 40, 10); got != tc.want {
			t.Errorf("%s: exit %d, want %d", tc.name, got, tc.want)
		}
	}
}
