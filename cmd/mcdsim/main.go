// Command mcdsim runs one benchmark on the MCD processor simulator
// under a chosen DVFS scheme and prints a run report.
//
// Usage:
//
//	mcdsim -bench epic_decode -scheme adaptive -insts 500000
//	mcdsim -bench mcf -scheme none -v
//	mcdsim -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mcddvfs"
	"mcddvfs/internal/cliflags"
	"mcddvfs/internal/dvfs"
	"mcddvfs/internal/experiment"
	"mcddvfs/internal/faults"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/profiling"
	"mcddvfs/internal/queue"
	"mcddvfs/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "epic_decode", "benchmark name (see -list)")
		scheme = flag.String("scheme", "adaptive",
			"DVFS scheme: "+strings.Join(schemeNames(), " | "))
		insts   = flag.Int64("insts", 500000, "dynamic instruction budget")
		seed    = flag.Int64("seed", 1, "simulation seed")
		verbose = flag.Bool("v", false, "print per-domain details and the frequency trace summary")
		list    = flag.Bool("list", false, "list available benchmarks and exit")
		compare = flag.Bool("compare", false, "also run the no-DVFS baseline and print savings")

		faultLvl = flag.Float64("faults", 0, "control-loop fault intensity in [0,1] (0 = no injection)")

		timeout       = cliflags.Timeout(flag.CommandLine, 0)
		cacheDir      = cliflags.CacheDir(flag.CommandLine, "")
		cacheMaxBytes = cliflags.CacheMaxBytes(flag.CommandLine)
		grace         = cliflags.ShutdownGrace(flag.CommandLine, 0)

		cores        = cliflags.Cores(flag.CommandLine)
		powerCap     = cliflags.PowerCap(flag.CommandLine)
		governorName = cliflags.Governor(flag.CommandLine)
		governorGain = cliflags.GovernorGain(flag.CommandLine)

		split     = flag.Bool("split", false, "use the 5-domain (split front end) partition")
		prefetch  = flag.Bool("prefetch", false, "enable the next-line L1D prefetcher")
		noForward = flag.Bool("noforward", false, "disable store-to-load forwarding")
		tokenRing = flag.Bool("tokenring", false, "use token-ring synchronization interfaces")
		transmeta = flag.Bool("transmeta", false, "use Transmeta-style (idle-through) DVFS transitions")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	ctx, stop := cliflags.GraceNotifyContext(context.Background(), *grace)
	defer stop()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mcdsim:", err)
		}
	}()

	if *list {
		names := trace.Names()
		sort.Strings(names)
		for _, n := range names {
			p, _ := trace.ByName(n)
			fmt.Printf("%-14s %s\n", n, p.Suite)
		}
		return
	}

	machine := mcd.DefaultConfig()
	machine.Seed = *seed
	machine.SplitFrontEnd = *split
	machine.Prefetch = *prefetch
	machine.StoreForwarding = !*noForward
	if *tokenRing {
		machine.SyncPolicy = queue.SyncTokenRing
	}
	if *transmeta {
		machine.Transitions = dvfs.TransmetaTransitions()
	}
	machine.Faults = faults.Intensity(*faultLvl, *seed)
	opt := experiment.Options{Instructions: *insts, Seed: *seed, Machine: &machine, Timeout: *timeout, CacheDir: *cacheDir, CacheMaxBytes: *cacheMaxBytes,
		Cores: *cores, PowerCapW: *powerCap, Governor: *governorName, GovernorGain: *governorGain}

	if *cores > 1 || *powerCap > 0 || (*governorName != "" && *governorName != "none") {
		// Chip mode: every core runs -bench (a homogeneous chip; the
		// experiments CLI's capsweep/captransient artifacts cover the
		// heterogeneous mixes).
		cr, err := experiment.RunChipContext(ctx, []string{*bench}, experiment.Scheme(*scheme), opt)
		if err != nil {
			exitErr(err)
		}
		printChip(cr, *verbose)
		if *compare {
			fmt.Fprintln(os.Stderr, "mcdsim: -compare applies to single-core runs only; ignored")
		}
		return
	}

	res, err := experiment.RunOneContext(ctx, *bench, experiment.Scheme(*scheme), opt)
	if err != nil {
		exitErr(err)
	}
	printRun(res, *verbose)

	if *compare && experiment.Scheme(*scheme) != experiment.SchemeNone {
		// The baseline has no control loop to corrupt.
		base := machine
		base.Faults = faults.Config{}
		bopt := opt
		bopt.Machine = &base
		baseRes, err := experiment.RunOneContext(ctx, *bench, experiment.SchemeNone, bopt)
		if err != nil {
			exitErr(err)
		}
		c := experimentCompare(baseRes, res)
		fmt.Printf("\nvs no-DVFS baseline:\n")
		fmt.Printf("  energy saving        %7.2f%%\n", 100*c.save)
		fmt.Printf("  perf degradation     %7.2f%%\n", 100*c.perf)
		fmt.Printf("  EDP improvement      %7.2f%%\n", 100*c.edp)
	}
}

// schemeNames lists every registered scheme for the -scheme usage
// string, so new registry plugins surface in -h with no CLI edits.
func schemeNames() []string {
	var names []string
	for _, d := range mcddvfs.Schemes() {
		names = append(names, string(d.Name))
	}
	return names
}

func exitErr(err error) {
	fmt.Fprintln(os.Stderr, "mcdsim:", err)
	switch {
	case errors.Is(err, experiment.ErrCancelled):
		os.Exit(130)
	case errors.Is(err, experiment.ErrRunTimeout):
		os.Exit(124)
	}
	os.Exit(1)
}

type cmp struct{ save, perf, edp float64 }

func experimentCompare(base, run *mcd.Result) cmp {
	saveE := 1 - run.Metrics.EnergyJ/base.Metrics.EnergyJ
	perf := float64(run.Metrics.ExecTime)/float64(base.Metrics.ExecTime) - 1
	edp := 1 - run.Metrics.EDP()/base.Metrics.EDP()
	return cmp{saveE, perf, edp}
}

// printChip summarizes a chip run: the chip rollup, one line per core,
// and (with -v) the governor's epoch trace tail.
func printChip(cr *mcd.ChipResult, verbose bool) {
	fmt.Printf("cores            %d\n", len(cr.Cores))
	fmt.Printf("instructions     %d\n", cr.Metrics.Instructions)
	fmt.Printf("exec time        %v\n", cr.Metrics.ExecTime)
	fmt.Printf("energy           %.4g J\n", cr.Metrics.EnergyJ)
	fmt.Printf("EDP              %.4g J*s\n", cr.Metrics.EDP())
	fmt.Printf("mean power       %.2f W\n", cr.MeanPowerW())
	if cr.PowerCapW > 0 {
		fmt.Printf("power budget     %.2f W\n", cr.PowerCapW)
	}
	fmt.Println()
	fmt.Printf("%-5s %-14s %10s %12s %10s %10s\n",
		"core", "benchmark", "insts", "time", "energy(J)", "MIPS")
	for i, c := range cr.Cores {
		fmt.Printf("%-5d %-14s %10d %12v %10.4g %10.0f\n",
			i, c.Benchmark, c.Metrics.Instructions, c.Metrics.ExecTime, c.Metrics.EnergyJ, c.Metrics.IPS()/1e6)
	}
	if !verbose || len(cr.EpochTrace) == 0 {
		return
	}
	fmt.Printf("\ngovernor epoch trace (%d epochs, last 10):\n", len(cr.EpochTrace))
	start := len(cr.EpochTrace) - 10
	if start < 0 {
		start = 0
	}
	for _, s := range cr.EpochTrace[start:] {
		caps := make([]string, len(s.CapMHz))
		for i, m := range s.CapMHz {
			caps[i] = fmt.Sprintf("%.0f", m)
		}
		fmt.Printf("  %8.1f us  %7.2f W  caps %s MHz\n",
			s.Time.Seconds()*1e6, s.TotalPowerW(), strings.Join(caps, " "))
	}
}

func printRun(res *mcd.Result, verbose bool) {
	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("scheme           %s\n", res.Scheme)
	fmt.Printf("instructions     %d\n", res.Metrics.Instructions)
	fmt.Printf("exec time        %v\n", res.Metrics.ExecTime)
	fmt.Printf("energy           %.4g J\n", res.Metrics.EnergyJ)
	fmt.Printf("EDP              %.4g J*s\n", res.Metrics.EDP())
	fmt.Printf("IPC              %.3f\n", res.IPC)
	fmt.Printf("branch mispred   %.2f%%\n", 100*res.BranchMispredictRate)
	fmt.Printf("L1D/L2/L1I miss  %.2f%% / %.2f%% / %.2f%%\n",
		100*res.L1DMissRate, 100*res.L2MissRate, 100*res.L1IMissRate)

	if !verbose {
		return
	}
	fmt.Println()
	fmt.Printf("%-9s %10s %12s %10s %8s %10s %8s\n",
		"domain", "energy(J)", "mean f(MHz)", "cycles", "act", "occupancy", "retgts")
	for _, name := range []string{mcd.NameFrontEnd, mcd.NameInt, mcd.NameFP, mcd.NameLS} {
		d := res.Domains[name]
		fmt.Printf("%-9s %10.4g %12.1f %10d %8.3f %10.2f %8d\n",
			name, d.EnergyJ, d.MeanFreqMHz, d.Cycles, d.MeanActivity, d.MeanOccupancy, d.Transitions)
	}
	for _, name := range []string{mcd.NameInt, mcd.NameFP, mcd.NameLS} {
		tr := res.FreqTrace[name]
		if len(tr) == 0 {
			continue
		}
		fmt.Printf("\n%s frequency trace (%d points):\n", name, len(tr))
		step := len(tr)/20 + 1
		for i := 0; i < len(tr); i += step {
			rel := tr[i].MHz / 1000
			fmt.Printf("  %10d insts  %6.0f MHz  %s\n", tr[i].Insts, tr[i].MHz, strings.Repeat("#", int(rel*40)))
		}
	}
}
