// Command spectrum runs the Section-5.2 spectral analysis on a
// benchmark's queue-occupancy series: multitaper variance spectrum by
// wavelength and the fast-workload-variation classification.
//
// Usage:
//
//	spectrum -bench adpcm_encode -domain INT
//	spectrum -all
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mcddvfs/internal/experiment"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/spectrum"
	"mcddvfs/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "epic_decode", "benchmark name")
		domain = flag.String("domain", "INT", "queue to analyze: INT | FP | LS")
		insts  = flag.Int64("insts", 500000, "instructions to simulate")
		seed   = flag.Int64("seed", 1, "simulation seed")
		all    = flag.Bool("all", false, "classify every benchmark instead")
	)
	flag.Parse()
	opt := experiment.Options{Instructions: *insts, Seed: *seed}

	if *all {
		classes, err := experiment.ClassifyBenchmarks(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spectrum:", err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %-11s %12s %s\n", "benchmark", "suite", "fast share", "class")
		for _, c := range classes {
			class := "slow"
			if c.Fast {
				class = "FAST"
			}
			fmt.Printf("%-14s %-11s %12.3f %s\n", c.Name, c.Suite, c.ShortShare, class)
		}
		return
	}

	if _, err := trace.ByName(*bench); err != nil {
		fmt.Fprintln(os.Stderr, "spectrum:", err)
		os.Exit(1)
	}
	res, err := experiment.RunOne(*bench, experiment.SchemeNone, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spectrum:", err)
		os.Exit(1)
	}
	name := map[string]string{"INT": mcd.NameInt, "FP": mcd.NameFP, "LS": mcd.NameLS}[*domain]
	if name == "" {
		fmt.Fprintf(os.Stderr, "spectrum: unknown domain %q\n", *domain)
		os.Exit(2)
	}
	samples := res.QueueSamples[name]
	sp, err := spectrum.Multitaper(samples, 5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spectrum:", err)
		os.Exit(1)
	}
	fmt.Printf("%s %s queue: %d samples at 250 MHz\n", *bench, *domain, len(samples))
	fmt.Printf("%22s %14s\n", "wavelength (samples)", "variance")
	edges := []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536}
	for i := 0; i+1 < len(edges); i++ {
		v := sp.BandVariance(edges[i], edges[i+1])
		fmt.Printf("%9.0f - %-10.0f %14.5g\n", edges[i], edges[i+1], v)
	}
	share := sp.FastShare(spectrum.DefaultNoiseSamples, spectrum.DefaultIntervalSamples)
	fmt.Printf("workload variance above noise floor: %.4g entries^2\n",
		sp.BandVariance(spectrum.DefaultNoiseSamples, math.Inf(1)))
	fmt.Printf("fast-variation share: %.3f (threshold %.2f) -> ", share, spectrum.DefaultFastShareThreshold)
	if share > spectrum.DefaultFastShareThreshold {
		fmt.Println("FAST")
	} else {
		fmt.Println("slow")
	}
}
