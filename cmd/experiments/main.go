// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -all                 # everything (the full matrix takes ~1-2 min)
//	experiments -only table1,fig7   # selected artifacts
//	experiments -all -out results/  # also write one .txt per artifact
//	experiments -faults 0,0.5,1     # robustness sweep: EDP vs fault intensity
//	experiments -only fig9 -schemes adaptive,pid-adaptive  # subset / extension columns
//	experiments -only fig9,fig10 -corpus traces/  # stream matrix traces from a corpus
//
// Artifact IDs: table1 table2 fig7 fig8 fig9 fig10 fig11 table3 table4
// remarks ablation transitions global qref interfaces partitions delays
// seeds summary robustness capsweep captransient. The robustness sweep
// and the chip artifacts (capsweep, captransient) only run when asked
// for explicitly, never under -all.
//
// Simulation results persist across runs in results/.cache by default
// (-cache-dir); delete that directory or pass -cache-dir "" to force a
// cold run. Artifacts are byte-identical either way.
//
// SIGINT/SIGTERM cancel in-flight simulations; artifacts already
// produced are flushed before exit, and a partially completed matrix
// still renders the rows whose cells finished.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mcddvfs"
	"mcddvfs/internal/cliflags"
	"mcddvfs/internal/experiment"
	"mcddvfs/internal/profiling"
)

// controlledSchemeNames lists the default sweep columns for -h, read
// from the scheme registry so new plugins surface with no CLI edits.
func controlledSchemeNames() []string {
	var names []string
	for _, d := range mcddvfs.Schemes() {
		if d.Controlled && !d.Extension {
			names = append(names, string(d.Name))
		}
	}
	return names
}

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		only   = flag.String("only", "", "comma-separated artifact IDs to run")
		insts  = flag.Int64("insts", 500000, "instructions per simulation")
		seed   = flag.Int64("seed", 1, "simulation seed")
		out    = flag.String("out", "", "directory to also write per-artifact .txt files")
		asJSON = flag.Bool("json", false, "with -out, also write per-artifact .json files")
		asSVG  = flag.Bool("svg", false, "with -out, also render figures 7-11 as .svg files")

		corpusDir = flag.String("corpus", "", "resolve matrix benchmarks from this trace corpus directory (cmd/tracegen -corpus): streams traces from disk with bounded memory; the corpus must match -seed and -insts")
		benchCSV  = flag.String("bench", "", `restrict the benchmark × scheme sweeps to this comma-separated subset of benchmarks ("" = all; with -corpus, the corpus's members in manifest order)`)

		faultsSpec = flag.String("faults", "", `run the robustness artifact at these comma-separated fault intensities in [0,1] (e.g. "0,0.5,1"; "default" = 0,0.25,0.5,0.75,1)`)
		schemesCSV = flag.String("schemes", "",
			`restrict the benchmark × scheme sweeps to this comma-separated subset of registered schemes (e.g. "adaptive,pid-adaptive"; "" = the paper's core comparison: `+strings.Join(controlledSchemeNames(), ", ")+`)`)
		timeout       = cliflags.Timeout(flag.CommandLine, 0)
		cacheDir      = cliflags.CacheDir(flag.CommandLine, "results/.cache")
		cacheMaxBytes = cliflags.CacheMaxBytes(flag.CommandLine)
		grace         = cliflags.ShutdownGrace(flag.CommandLine, 0)

		cores        = cliflags.Cores(flag.CommandLine)
		powerCap     = cliflags.PowerCap(flag.CommandLine)
		governorName = cliflags.Governor(flag.CommandLine)
		governorGain = cliflags.GovernorGain(flag.CommandLine)

		useCache   = flag.Bool("cache", true, "memoize simulation results across artifacts (identical output, fewer simulations)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	ctx, stop := cliflags.GraceNotifyContext(context.Background(), *grace)
	defer stop()

	experiment.SetCaching(*useCache)
	if !*useCache {
		*cacheDir = ""
	}
	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	// Runs on the success path; error paths below os.Exit and lose the
	// profile, which is fine — a failed run is not worth profiling.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	want := map[string]bool{}
	switch {
	case *all:
	case *only != "":
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	case *faultsSpec != "":
		// -faults alone selects just the robustness artifact.
	default:
		fmt.Fprintln(os.Stderr, "experiments: pass -all, -only <ids>, or -faults <levels>; see -h")
		os.Exit(2)
	}
	sel := func(id string) bool { return *all || want[id] }

	var intensities []float64
	if *faultsSpec != "" && *faultsSpec != "default" {
		for _, f := range strings.Split(*faultsSpec, ",") {
			lv, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -faults: bad intensity %q: %v\n", f, err)
				os.Exit(2)
			}
			intensities = append(intensities, lv)
		}
	}

	opt := experiment.Options{
		Instructions: *insts, Seed: *seed, Timeout: *timeout, Context: ctx,
		CacheDir: *cacheDir, CacheMaxBytes: *cacheMaxBytes, CorpusDir: *corpusDir,
		Cores: *cores, PowerCapW: *powerCap, Governor: *governorName, GovernorGain: *governorGain,
	}
	if *schemesCSV != "" {
		for _, s := range strings.Split(*schemesCSV, ",") {
			opt.Schemes = append(opt.Schemes, experiment.Scheme(strings.TrimSpace(s)))
		}
	}
	if *benchCSV != "" {
		for _, b := range strings.Split(*benchCSV, ",") {
			opt.Benchmarks = append(opt.Benchmarks, strings.TrimSpace(b))
		}
	}
	emit := func(rep experiment.Report, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", rep.ID, err)
			if errors.Is(err, experiment.ErrCancelled) {
				fmt.Fprintln(os.Stderr, "experiments: interrupted; artifacts printed so far were flushed")
				os.Exit(130)
			}
			os.Exit(1)
		}
		rep.WriteTo(os.Stdout) //nolint:errcheck // stdout
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(rep.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if *asJSON {
				blob, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
				jpath := filepath.Join(*out, rep.ID+".json")
				if err := os.WriteFile(jpath, blob, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
			}
		}
	}

	if sel("table1") {
		emit(experiment.Table1(opt), nil)
	}
	if sel("table4") {
		emit(experiment.Table4(), nil)
	}
	if sel("remarks") {
		rep, err := experiment.RemarksReport()
		emit(rep, err)
	}

	var classes []experiment.BenchClass
	if sel("table2") || sel("fig11") || sel("table3") || sel("summary") {
		rep, cl, err := experiment.Table2(opt)
		classes = cl
		if sel("table2") {
			emit(rep, err)
		} else if err != nil {
			emit(rep, err)
		}
	}
	writeSVG := func(id string, svg string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s.svg: %v\n", id, err)
			os.Exit(1)
		}
		path := filepath.Join(*out, id+".svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if sel("fig7") {
		rep, err := experiment.Figure7(opt)
		emit(rep, err)
		if *asSVG && *out != "" {
			svg, err := experiment.Figure7SVG(opt)
			writeSVG("fig7", svg, err)
		}
	}
	if sel("fig8") {
		rep, err := experiment.Figure8(opt)
		emit(rep, err)
		if *asSVG && *out != "" {
			svg, err := experiment.Figure8SVG(opt)
			writeSVG("fig8", svg, err)
		}
	}

	if sel("fig9") || sel("fig10") || sel("fig11") || sel("summary") {
		// Stream fig9/fig10 rows into their .txt files as each
		// benchmark's cells finish, so a long sweep shows progress and
		// an interrupt leaves the files current up to the last complete
		// row. The batch render below rewrites the same bytes, so the
		// streamed file is a head start, never a divergence.
		mopt := opt
		type rowStream struct {
			id string
			f  *os.File
			s  *experiment.FigureStream
		}
		var streams []rowStream
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			for _, id := range []string{"fig9", "fig10"} {
				if !sel(id) {
					continue
				}
				f, err := os.Create(filepath.Join(*out, id+".txt"))
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
				s, err := experiment.NewFigureStream(f, id, opt)
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
				streams = append(streams, rowStream{id: id, f: f, s: s})
			}
		}
		mopt.RowFlush = func(ev experiment.RowEvent) {
			for _, rs := range streams {
				rs.s.Row(ev)
			}
			fmt.Fprintf(os.Stderr, "experiments: matrix row %d/%d (%s) done\n",
				ev.Index+1, ev.Total, ev.Bench)
		}
		start := time.Now()
		m, err := experiment.RunMatrixContext(ctx, mopt)
		if err != nil && (m == nil || !errors.Is(err, experiment.ErrCancelled)) {
			fmt.Fprintln(os.Stderr, "experiments: matrix:", err)
			os.Exit(1)
		}
		for _, rs := range streams {
			if serr := rs.s.Finish(m); serr != nil {
				fmt.Fprintf(os.Stderr, "experiments: streaming %s.txt: %v\n", rs.id, serr)
			}
			rs.f.Close()
		}
		if d := time.Since(start); d > 0 {
			cells := len(m.Benchmarks) * (len(m.Schemes) + 1)
			fmt.Fprintf(os.Stderr, "experiments: matrix %d cells in %.1fs (%.1f cells/s)\n",
				cells, d.Seconds(), float64(cells)/d.Seconds())
		}
		if m.Corpus != nil {
			fmt.Fprintf(os.Stderr, "experiments: corpus streaming: peak %d bytes resident (bound %d), %d chunk loads, %d heals\n",
				m.Corpus.PeakResidentBytes, m.Corpus.WindowBytes, m.Corpus.Loads, m.Corpus.Heals)
		}
		interrupted := err != nil
		if interrupted {
			fmt.Fprintln(os.Stderr, "experiments: matrix interrupted; rendering completed cells only")
		}
		for _, f := range m.Failures {
			fmt.Fprintln(os.Stderr, "experiments: matrix cell failed:", f.Error())
		}
		if sel("fig9") {
			emit(m.Figure9(), nil)
			if *asSVG && *out != "" {
				svg, err := m.Figure9SVG()
				writeSVG("fig9", svg, err)
			}
		}
		if sel("fig10") {
			emit(m.Figure10(), nil)
			if *asSVG && *out != "" {
				svg, err := m.Figure10SVG()
				writeSVG("fig10", svg, err)
			}
		}
		if sel("fig11") {
			fast := experiment.FastGroup(classes)
			if len(fast) == 0 {
				fmt.Fprintln(os.Stderr, "experiments: classifier found no fast benchmarks")
				os.Exit(1)
			}
			emit(m.Figure11(fast), nil)
			if *asSVG && *out != "" {
				svg, err := m.Figure11SVG(fast)
				writeSVG("fig11", svg, err)
			}
		}
		if sel("summary") {
			emit(experiment.Summary(m, classes), nil)
		}
		if interrupted {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; partial artifacts above were flushed")
			os.Exit(130)
		}
	}
	if sel("table3") {
		fast := experiment.FastGroup(classes)
		rep, err := experiment.Table3(opt, fast)
		emit(rep, err)
	}
	if sel("ablation") {
		rep, err := experiment.Ablation(opt, []string{"adpcm_encode", "gsm_decode", "gzip", "swim"})
		emit(rep, err)
	}
	if sel("transitions") {
		rep, err := experiment.TransitionStyles(opt, []string{"adpcm_encode", "gsm_decode", "gzip", "swim"})
		emit(rep, err)
	}
	if sel("global") {
		rep, err := experiment.GlobalComparison(opt, []string{"adpcm_encode", "gzip", "swim", "epic_decode"})
		emit(rep, err)
	}
	if sel("qref") {
		rep, err := experiment.QRefSweep(opt, []string{"gsm_decode", "gzip", "swim"})
		emit(rep, err)
	}
	if sel("interfaces") {
		rep, err := experiment.InterfaceStudy(opt, []string{"gsm_decode", "swim"})
		emit(rep, err)
	}
	if sel("partitions") {
		rep, err := experiment.PartitionStudy(opt, []string{"adpcm_encode", "gsm_decode", "gzip", "mcf", "swim"})
		emit(rep, err)
	}
	if sel("delays") {
		rep, err := experiment.DelaySweep(opt, []string{"adpcm_encode", "gsm_decode", "gzip"})
		emit(rep, err)
	}
	if sel("seeds") {
		rep, err := experiment.SeedStudy(opt, []string{"adpcm_encode", "gzip", "swim"}, 5)
		emit(rep, err)
	}
	if *faultsSpec != "" || want["robustness"] {
		rep, err := experiment.FaultSweepContext(ctx, opt,
			[]string{"adpcm_encode", "gsm_decode", "gzip", "swim"}, intensities)
		emit(rep, err)
	}
	// The chip artifacts, like robustness, run only when asked for
	// explicitly — a multi-core governor sweep is not part of the
	// paper's single-core reproduction that -all regenerates.
	if want["capsweep"] {
		rep, err := experiment.CapSweepContext(ctx, opt)
		emit(rep, err)
		if *asSVG && *out != "" {
			svg, err := experiment.CapSweepSVG(ctx, opt)
			writeSVG("capsweep", svg, err)
		}
	}
	if want["captransient"] {
		rep, err := experiment.CapTransientContext(ctx, opt)
		emit(rep, err)
	}

	if *useCache {
		hits, misses := experiment.CacheStats()
		fmt.Fprintf(os.Stderr, "experiments: %d simulations, %d served from cache\n", misses, hits)
		if *cacheDir != "" {
			st, derr := experiment.DiskCacheStats()
			fmt.Fprintf(os.Stderr, "experiments: disk cache %s: %d hits, %d misses, %d writes\n",
				*cacheDir, st.Hits, st.Misses, st.Writes)
			if derr != nil {
				fmt.Fprintln(os.Stderr, "experiments: disk cache degraded:", derr)
			}
		}
	}
}
