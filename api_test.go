package mcddvfs

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 17 {
		t.Fatalf("got %d benchmarks, want 17", len(bs))
	}
	if _, err := BenchmarkProfile(bs[0]); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkProfile("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunDefaultsToAdaptive(t *testing.T) {
	res, err := Run(RunSpec{Benchmark: "gzip", Instructions: 40000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != string(SchemeAdaptive) {
		t.Errorf("scheme = %q, want adaptive", res.Scheme)
	}
	if res.Metrics.Instructions != 40000 {
		t.Errorf("retired %d", res.Metrics.Instructions)
	}
}

func TestCompareRunsEndToEnd(t *testing.T) {
	base, err := Run(RunSpec{Benchmark: "swim", Scheme: SchemeNone, Instructions: 120000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Run(RunSpec{Benchmark: "swim", Scheme: SchemeAdaptive, Instructions: 120000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := CompareRuns(base, ad)
	if c.EnergySaving <= 0 {
		t.Errorf("adaptive saved no energy on swim: %+v", c)
	}
	if c.PerfDegradation > 0.15 {
		t.Errorf("perf degradation %.1f%% too high", 100*c.PerfDegradation)
	}
}

func TestTuneAdaptiveHook(t *testing.T) {
	called := 0
	_, err := Run(RunSpec{
		Benchmark:    "gzip",
		Instructions: 20000,
		Seed:         5,
		TuneAdaptive: func(c *ControllerConfig) { called++; c.TM0 = 100 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// One call per controlled domain wiring the controllers, plus one
	// per domain replaying the hook against scratch defaults for the
	// result-cache key (see experiment/cache.go).
	if called != 6 {
		t.Errorf("tune hook called %d times, want 6", called)
	}
}

func TestDefaultControllerPerDomain(t *testing.T) {
	if DefaultController(DomainInt).QRef != 7 {
		t.Error("INT QRef != 7")
	}
	if DefaultController(DomainFP).QRef != 4 || DefaultController(DomainLS).QRef != 4 {
		t.Error("FP/LS QRef != 4")
	}
}

func TestDefaultMachineValid(t *testing.T) {
	cfg := DefaultMachine()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyWorkloadAPI(t *testing.T) {
	n := 1 << 14
	fast := make([]float64, n)
	for i := range fast {
		fast[i] = 5 + 4*math.Sin(2*math.Pi*float64(i)/500)
	}
	share, isFast, err := ClassifyWorkload(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !isFast || share < 0.9 {
		t.Errorf("sinusoid at wavelength 500 not fast: share=%.3f fast=%v", share, isFast)
	}
}

func TestDefaultStabilitySystem(t *testing.T) {
	s := DefaultStabilitySystem()
	if !s.Stable(1) {
		t.Error("default system unstable")
	}
}

func TestNewMatrixSmall(t *testing.T) {
	m, err := NewMatrix(Options{Instructions: 20000, Seed: 5, Benchmarks: []string{"gzip"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results["gzip"]) != 4 {
		t.Errorf("matrix cell count = %d, want 4 schemes", len(m.Results["gzip"]))
	}
}

func TestTraceAPIRoundTrip(t *testing.T) {
	prof, err := BenchmarkProfile("gzip")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewTraceGenerator(prof, 9, 20000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, gen, 20000); err != nil {
		t.Fatal(err)
	}
	r, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTrace(r, RunSpec{Scheme: SchemeAdaptive, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Instructions != 20000 {
		t.Errorf("replayed %d instructions", res.Metrics.Instructions)
	}
	if res.Benchmark != "gzip" {
		t.Errorf("benchmark label = %q", res.Benchmark)
	}
}

func TestRunTraceMatchesRunExactly(t *testing.T) {
	// Replaying a captured trace must reproduce the generator-driven
	// run bit for bit (same seed drives the machine's jitter).
	direct, err := Run(RunSpec{Benchmark: "gzip", Scheme: SchemeNone, Instructions: 15000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := BenchmarkProfile("gzip")
	gen, _ := NewTraceGenerator(prof, 4+11, 15000) // harness offsets the trace seed by 11
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, gen, 15000); err != nil {
		t.Fatal(err)
	}
	r, _ := ReadTrace(&buf)
	replayed, err := RunTrace(r, RunSpec{Scheme: SchemeNone, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Metrics != replayed.Metrics {
		t.Errorf("replay diverged:\n direct  %+v\n replay  %+v", direct.Metrics, replayed.Metrics)
	}
}

func TestRunTraceErrors(t *testing.T) {
	// Corrupt machine config propagates.
	bad := DefaultMachine()
	bad.ROBSize = 0
	prof, _ := BenchmarkProfile("gzip")
	gen, _ := NewTraceGenerator(prof, 1, 100)
	if _, err := RunTrace(gen, RunSpec{Machine: &bad}); err == nil {
		t.Error("invalid machine accepted")
	}
	// Unknown scheme propagates out of AttachScheme as ErrInvalidSpec,
	// listing what the registry knows.
	gen2, _ := NewTraceGenerator(prof, 1, 100)
	_, err := RunTrace(gen2, RunSpec{Scheme: Scheme("bogus")})
	if !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("unknown scheme: got %v, want ErrInvalidSpec", err)
	}
	if err != nil && !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-scheme error does not list registered schemes: %v", err)
	}
}

func TestRunProfileValidation(t *testing.T) {
	var empty Profile
	if _, err := RunProfile(empty, RunSpec{Instructions: 100}); err == nil {
		t.Error("empty profile accepted")
	}
}

// TestRunRejectsBadSpecs asserts malformed requests surface as errors
// wrapping ErrInvalidSpec at the public boundary instead of panicking
// deep inside the simulator (queue/cache geometry checks, the trace
// generator, scheme dispatch).
func TestRunRejectsBadSpecs(t *testing.T) {
	badCache := DefaultMachine()
	badCache.Cache.L1DLine = 33 // not a power of two

	badQueue := DefaultMachine()
	badQueue.IntQSize = -4

	cases := []struct {
		name string
		spec RunSpec
	}{
		{"unknown benchmark", RunSpec{Benchmark: "nonesuch"}},
		{"unknown scheme", RunSpec{Benchmark: "gzip", Scheme: "warp-speed"}},
		{"bad cache geometry", RunSpec{Benchmark: "gzip", Machine: &badCache}},
		{"bad queue geometry", RunSpec{Benchmark: "gzip", Machine: &badQueue}},
		{"bad fault config", RunSpec{Benchmark: "gzip", Faults: FaultConfig{Sensor: SensorFaults{DropRate: 7}}}},
	}
	for _, tc := range cases {
		tc.spec.Instructions = 20000
		if _, err := Run(tc.spec); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: got %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

// TestRunContextCancellation asserts the public entry point honors a
// cancelled context with a structured ErrCancelled.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, RunSpec{Benchmark: "gzip", Instructions: 20000})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
}

// TestSchemesExport pins the registry listing the public API exposes:
// the paper's schemes in display order, correctly flagged, with a
// description — and every listed name actually runnable.
func TestSchemesExport(t *testing.T) {
	ds := Schemes()
	if len(ds) < 6 {
		t.Fatalf("Schemes() lists %d schemes, want at least 6", len(ds))
	}
	var names []string
	for _, d := range ds {
		names = append(names, string(d.Name))
		if d.Description == "" {
			t.Errorf("scheme %q has no description", d.Name)
		}
	}
	want := []string{"none", "adaptive", "pid", "attack-decay", "global", "pid-adaptive"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("Schemes() order = %v, want prefix %v", names, want)
		}
	}
	if ds[0].Controlled {
		t.Error("the no-DVFS baseline claims to control frequency")
	}
	if ds[0].Extension || ds[1].Extension {
		t.Error("core schemes flagged as extensions")
	}
	if !ds[4].Extension || !ds[5].Extension {
		t.Error("global/pid-adaptive not flagged as extensions")
	}
}

// TestSchemesAllRunnable runs one tiny simulation under every scheme
// Schemes() advertises — including extensions registered after this
// test was written — so the listing can never drift from what Run
// accepts.
func TestSchemesAllRunnable(t *testing.T) {
	for _, d := range Schemes() {
		res, err := Run(RunSpec{Benchmark: "gzip", Scheme: d.Name, Instructions: 15000, Seed: 6})
		if err != nil {
			t.Errorf("%s: %v", d.Name, err)
			continue
		}
		if res.Scheme != string(d.Name) {
			t.Errorf("result labeled %q, want %q", res.Scheme, d.Name)
		}
	}
}

// TestMatrixSchemeSubset drives Options.Schemes through the public
// matrix entry point: the requested subset (plus the implicit
// baseline) is exactly what runs, and an unregistered name fails as
// ErrInvalidSpec naming the registered schemes.
func TestMatrixSchemeSubset(t *testing.T) {
	m, err := NewMatrix(Options{
		Instructions: 15000, Seed: 6,
		Benchmarks: []string{"gzip"},
		Schemes:    []Scheme{"pid-adaptive", SchemeAdaptive},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results["gzip"]) != 3 {
		t.Errorf("subset matrix has %d cells, want 3 (baseline + 2)", len(m.Results["gzip"]))
	}
	if m.Results["gzip"][SchemeNone] == nil || m.Results["gzip"][SchemeAdaptive] == nil ||
		m.Results["gzip"][Scheme("pid-adaptive")] == nil {
		t.Errorf("subset matrix missing cells: %v", m.Results["gzip"])
	}
	// Registry order, not request order: adaptive renders before the
	// pid-adaptive extension.
	fig := m.Figure9()
	if len(fig.Lines) == 0 || !strings.Contains(fig.Lines[0], "adaptive") ||
		!strings.Contains(fig.Lines[0], "pid-adaptive") {
		t.Errorf("subset figure header missing schemes: %q", fig.Lines)
	}

	_, err = NewMatrix(Options{
		Instructions: 15000, Seed: 6,
		Benchmarks: []string{"gzip"},
		Schemes:    []Scheme{"warp-speed"},
	})
	if !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("unknown scheme subset: got %v, want ErrInvalidSpec", err)
	}
	if !strings.Contains(err.Error(), "registered") {
		t.Errorf("error does not list registered schemes: %v", err)
	}
}

// TestFaultIntensityExport sanity-checks the re-exported fault knob.
func TestFaultIntensityExport(t *testing.T) {
	if cfg := FaultIntensity(0, 1); cfg.Enabled() {
		t.Error("zero intensity is enabled")
	}
	cfg := FaultIntensity(0.5, 1)
	if !cfg.Enabled() {
		t.Error("half intensity is disabled")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}
