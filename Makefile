# Single entry points shared by local development and CI, so the two
# can never drift: .github/workflows/ci.yml calls these same targets.

GO ?= go

.PHONY: build test race lint bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = the standard toolchain vet plus the repo's own invariant
# suite (docs/LINTING.md): determinism of the simulator and artifact
# rendering, cancellation flow, and the harness error taxonomy.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mcdlint ./...

bench:
	$(GO) test -run '^$$' -bench BenchmarkSimulatorThroughput -benchtime 1x -benchmem .
