# Single entry points shared by local development and CI, so the two
# can never drift: .github/workflows/ci.yml calls these same targets.

GO ?= go

.PHONY: build test race lint bench bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = the standard toolchain vet plus the repo's own invariant
# suite (docs/LINTING.md): determinism of the simulator and artifact
# rendering, cancellation flow, and the harness error taxonomy.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mcdlint ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkRunMatrix' -benchtime 1x -benchmem .

# bench-compare re-runs the tracked benchmarks and diffs ns/op against
# the committed baseline; fails past the tolerance. Single-iteration
# runs on shared hardware are noisy — treat a failure as "look closer",
# not proof of a regression (CI runs this job non-blocking).
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkRunMatrix' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchjson -out bench_new.json
	$(GO) run ./cmd/benchjson -compare -tolerance 50 BENCH_baseline.json bench_new.json
