# Single entry points shared by local development and CI, so the two
# can never drift: .github/workflows/ci.yml calls these same targets.

GO ?= go

.PHONY: build test race lint lint-budget bench bench-compare bench-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = the standard toolchain vet plus the repo's own invariant
# suite (docs/LINTING.md): determinism of the simulator and artifact
# rendering (including the whole-program dettaint/cachekey analyzers),
# cancellation flow, and the harness error taxonomy.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mcdlint ./...

# lint-budget is what CI runs: the same checks, timed, with a 60s
# ceiling on the mcdlint pass. The interprocedural analyzers build a
# whole-program call graph; this gate keeps that from quietly growing
# into a multi-minute CI tax. The timing is echoed so the job log
# tracks the trend.
lint-budget:
	$(GO) vet ./...
	$(GO) build -o /tmp/mcdlint-ci ./cmd/mcdlint
	@start=$$(date +%s); \
	/tmp/mcdlint-ci ./... || exit $$?; \
	end=$$(date +%s); elapsed=$$((end - start)); \
	echo "mcdlint wall time: $${elapsed}s (budget 60s)"; \
	if [ $$elapsed -ge 60 ]; then \
		echo "mcdlint exceeded its 60s wall-time budget" >&2; exit 1; \
	fi

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkRunMatrix|BenchmarkChunkedReplay|BenchmarkChip' -benchtime 1x -benchmem .

# bench-compare re-runs the tracked benchmarks and gates against the
# committed baseline; CI runs it as a blocking job. Two gates, each
# calibrated to how its statistic behaves on shared hardware:
#
#   * wall clock at ±40% — benchmarks reporting a throughput metric
#     (sim-insts/s for the simulator core, cells/s for the matrix
#     harness) are judged on that figure, the rest on ns/op, best-of-5
#     (-count=5, benchjson keeps the fastest repeat). Coarse on
#     purpose: back-to-back
#     best-of-N invocations drift ±20-30% with runner load, so a
#     tighter wall gate flaps red on quiet commits. 40% still trips on
#     catastrophic slowdowns (reintroducing per-cycle polling, an
#     accidental O(domains) scan per edge).
#   * allocs/op at ±10% — allocation counts are deterministic between
#     runs, so this gate is tight; it is the one that catches
#     per-iteration garbage creeping back into the hot path.
#
# After a deliberate performance change, refresh the baseline with
# `make bench-baseline`.
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkRunMatrix|BenchmarkChunkedReplay|BenchmarkChip' -benchtime 1x -count=5 -benchmem . \
		| $(GO) run ./cmd/benchjson -out bench_new.json
	$(GO) run ./cmd/benchjson -compare -tolerance 40 -alloc-tolerance 10 BENCH_baseline.json bench_new.json

# bench-baseline rewrites BENCH_baseline.json from a fresh best-of-5
# run; commit the result alongside the change that moved the numbers.
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkRunMatrix|BenchmarkChunkedReplay|BenchmarkChip' -benchtime 1x -count=5 -benchmem . \
		| $(GO) run ./cmd/benchjson -out BENCH_baseline.json
