module mcddvfs

go 1.22
